//! Weekly demand-intensity curves per archetype.
//!
//! `intensity(archetype, weekday, minute)` returns the *shape* of demand
//! (dimensionless, peak ≈ 1.0) at a given minute of a given day of week.
//! Shapes are built from smooth Gaussian bumps so nearby minutes are
//! correlated, and differ between weekdays and weekends exactly the way
//! the paper's Fig. 1 illustrates: residential/business areas carry
//! commute peaks on weekdays and flatten on weekends, entertainment areas
//! surge on weekend afternoons and evenings.

use crate::city::Archetype;
use crate::types::MINUTES_PER_DAY;

/// A Gaussian bump centred at `centre` minutes with width `sigma` and
/// height `height`.
#[derive(Debug, Clone, Copy)]
struct Bump {
    centre: f64,
    sigma: f64,
    height: f64,
}

impl Bump {
    fn eval(&self, minute: f64) -> f64 {
        let d = (minute - self.centre) / self.sigma;
        self.height * (-0.5 * d * d).exp()
    }
}

const MORNING_PEAK: f64 = 8.0 * 60.0;
const EVENING_PEAK: f64 = 19.0 * 60.0;
const NOON: f64 = 12.5 * 60.0;
const NIGHT: f64 = 22.5 * 60.0;

fn weekday_bumps(archetype: Archetype) -> Vec<Bump> {
    match archetype {
        Archetype::Residential => vec![
            Bump {
                centre: MORNING_PEAK,
                sigma: 55.0,
                height: 1.0,
            },
            Bump {
                centre: EVENING_PEAK,
                sigma: 80.0,
                height: 0.45,
            },
            Bump {
                centre: NOON,
                sigma: 120.0,
                height: 0.15,
            },
        ],
        Archetype::Business => vec![
            Bump {
                centre: MORNING_PEAK + 30.0,
                sigma: 50.0,
                height: 0.45,
            },
            Bump {
                centre: EVENING_PEAK,
                sigma: 60.0,
                height: 1.0,
            },
            Bump {
                centre: NOON,
                sigma: 90.0,
                height: 0.35,
            },
        ],
        Archetype::Entertainment => vec![
            Bump {
                centre: NOON,
                sigma: 100.0,
                height: 0.25,
            },
            Bump {
                centre: NIGHT,
                sigma: 90.0,
                height: 0.5,
            },
        ],
        Archetype::Suburban => vec![
            Bump {
                centre: MORNING_PEAK,
                sigma: 90.0,
                height: 0.4,
            },
            Bump {
                centre: EVENING_PEAK,
                sigma: 110.0,
                height: 0.35,
            },
        ],
        Archetype::Mixed => vec![
            Bump {
                centre: MORNING_PEAK,
                sigma: 60.0,
                height: 0.7,
            },
            Bump {
                centre: EVENING_PEAK,
                sigma: 70.0,
                height: 0.7,
            },
            Bump {
                centre: NOON,
                sigma: 110.0,
                height: 0.25,
            },
        ],
        Archetype::TransportHub => vec![
            Bump {
                centre: 9.5 * 60.0,
                sigma: 120.0,
                height: 0.8,
            },
            Bump {
                centre: 15.0 * 60.0,
                sigma: 150.0,
                height: 0.6,
            },
            Bump {
                centre: 20.5 * 60.0,
                sigma: 100.0,
                height: 0.75,
            },
        ],
    }
}

fn weekend_bumps(archetype: Archetype) -> Vec<Bump> {
    match archetype {
        Archetype::Residential => vec![
            Bump {
                centre: 10.5 * 60.0,
                sigma: 110.0,
                height: 0.4,
            },
            Bump {
                centre: EVENING_PEAK,
                sigma: 120.0,
                height: 0.35,
            },
        ],
        Archetype::Business => vec![Bump {
            centre: NOON,
            sigma: 150.0,
            height: 0.18,
        }],
        Archetype::Entertainment => vec![
            Bump {
                centre: 14.0 * 60.0,
                sigma: 120.0,
                height: 0.85,
            },
            Bump {
                centre: NIGHT,
                sigma: 100.0,
                height: 1.0,
            },
        ],
        Archetype::Suburban => vec![Bump {
            centre: 13.0 * 60.0,
            sigma: 160.0,
            height: 0.3,
        }],
        Archetype::Mixed => vec![
            Bump {
                centre: 13.0 * 60.0,
                sigma: 140.0,
                height: 0.45,
            },
            Bump {
                centre: NIGHT,
                sigma: 110.0,
                height: 0.4,
            },
        ],
        Archetype::TransportHub => vec![
            Bump {
                centre: 10.0 * 60.0,
                sigma: 130.0,
                height: 0.7,
            },
            Bump {
                centre: 17.5 * 60.0,
                sigma: 140.0,
                height: 0.75,
            },
        ],
    }
}

/// Baseline activity floor so demand never reaches exactly zero during
/// the day; overnight (1:00–5:00) decays further.
fn floor_level(minute: f64) -> f64 {
    let hour = minute / 60.0;
    if (1.0..5.0).contains(&hour) {
        0.02
    } else if !(6.0..23.5).contains(&hour) {
        0.05
    } else {
        0.08
    }
}

/// Demand-intensity shape for an archetype at `(weekday, minute)`.
///
/// `weekday` follows the paper's WeekID convention: 0 = Monday …
/// 6 = Sunday. The returned value is non-negative, roughly in `[0, 1.2]`.
///
/// # Panics
/// Panics if `weekday >= 7` or `minute >= 1440`.
// deepsd-lint: allow(panic-reach, reason="weekday is computed day % 7 at every call site")
pub fn intensity(archetype: Archetype, weekday: usize, minute: u32) -> f64 {
    assert!(weekday < 7, "weekday out of range");
    assert!(minute < MINUTES_PER_DAY, "minute out of range");
    let m = minute as f64;
    let is_weekend = weekday >= 5;
    let bumps = if is_weekend {
        weekend_bumps(archetype)
    } else {
        weekday_bumps(archetype)
    };
    // Friday evenings behave half-way to a weekend for entertainment.
    let friday_boost = if weekday == 4 && archetype == Archetype::Entertainment && m > 17.0 * 60.0 {
        0.35 * Bump {
            centre: NIGHT,
            sigma: 100.0,
            height: 1.0,
        }
        .eval(m)
    } else {
        0.0
    };
    let sum: f64 = bumps.iter().map(|b| b.eval(m)).sum();
    floor_level(m) + sum + friday_boost
}

/// Average intensity of an archetype over a whole week (used to size
/// supply against demand).
pub fn weekly_mean_intensity(archetype: Archetype) -> f64 {
    let mut total = 0.0;
    for weekday in 0..7 {
        for minute in (0..MINUTES_PER_DAY).step_by(10) {
            total += intensity(archetype, weekday, minute);
        }
    }
    total / (7.0 * (MINUTES_PER_DAY / 10) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_is_nonnegative_everywhere() {
        for archetype in Archetype::ALL {
            for weekday in 0..7 {
                for minute in (0..1440).step_by(15) {
                    let v = intensity(archetype, weekday, minute);
                    assert!(v >= 0.0, "{archetype:?} {weekday} {minute}: {v}");
                    assert!(v < 2.0, "{archetype:?} {weekday} {minute}: {v}");
                }
            }
        }
    }

    #[test]
    fn residential_peaks_in_weekday_morning() {
        let morning = intensity(Archetype::Residential, 2, 8 * 60);
        let noon = intensity(Archetype::Residential, 2, 12 * 60);
        let night = intensity(Archetype::Residential, 2, 3 * 60);
        assert!(morning > 2.0 * noon);
        assert!(morning > 10.0 * night);
    }

    #[test]
    fn business_peaks_in_weekday_evening() {
        let evening = intensity(Archetype::Business, 1, 19 * 60);
        let morning = intensity(Archetype::Business, 1, 8 * 60);
        assert!(evening > morning);
    }

    #[test]
    fn business_flattens_on_sunday() {
        // The paper's Fig. 1(b): commute-area demand collapses on Sunday.
        let wed_evening = intensity(Archetype::Business, 2, 19 * 60);
        let sun_evening = intensity(Archetype::Business, 6, 19 * 60);
        assert!(wed_evening > 3.0 * sun_evening);
    }

    #[test]
    fn entertainment_surges_on_sunday() {
        // The paper's Fig. 1(a): entertainment demand rises on Sunday.
        let wed_afternoon = intensity(Archetype::Entertainment, 2, 14 * 60);
        let sun_afternoon = intensity(Archetype::Entertainment, 6, 14 * 60);
        assert!(sun_afternoon > 2.0 * wed_afternoon);
    }

    #[test]
    fn friday_night_entertainment_boost() {
        let thu_night = intensity(Archetype::Entertainment, 3, 22 * 60 + 30);
        let fri_night = intensity(Archetype::Entertainment, 4, 22 * 60 + 30);
        assert!(fri_night > thu_night);
    }

    #[test]
    fn overnight_demand_is_low_for_all() {
        for archetype in Archetype::ALL {
            for weekday in 0..7 {
                let v = intensity(archetype, weekday, 3 * 60);
                assert!(v < 0.15, "{archetype:?} {weekday}: {v}");
            }
        }
    }

    #[test]
    fn weekly_means_are_ordered_sensibly() {
        let sub = weekly_mean_intensity(Archetype::Suburban);
        for archetype in [
            Archetype::Business,
            Archetype::Residential,
            Archetype::Mixed,
        ] {
            assert!(weekly_mean_intensity(archetype) > sub);
        }
    }

    #[test]
    #[should_panic(expected = "weekday out of range")]
    fn rejects_bad_weekday() {
        let _ = intensity(Archetype::Mixed, 7, 0);
    }

    #[test]
    #[should_panic(expected = "minute out of range")]
    fn rejects_bad_minute() {
        let _ = intensity(Archetype::Mixed, 0, 1440);
    }

    #[test]
    fn curves_are_smooth() {
        // No jump between adjacent minutes larger than 5% of peak.
        for archetype in Archetype::ALL {
            for weekday in [0usize, 6] {
                let mut prev = intensity(archetype, weekday, 0);
                for minute in 1..1440 {
                    let v = intensity(archetype, weekday, minute);
                    assert!(
                        (v - prev).abs() < 0.06,
                        "{archetype:?} {weekday} jump at {minute}"
                    );
                    prev = v;
                }
            }
        }
    }
}
