//! # deepsd-baselines — the comparison methods of the DeepSD evaluation
//!
//! From-scratch implementations of every baseline in §VI-C of the paper,
//! consuming the same features as DeepSD (fair-comparison setup):
//!
//! * [`average::EmpiricalAverage`] — per `(area, timeslot)` mean gap;
//! * [`lasso::Lasso`] — ℓ1-regularised linear regression by cyclic
//!   coordinate descent (stand-in for scikit-learn's LASSO);
//! * [`gbdt::Gbdt`] — histogram gradient-boosted regression trees
//!   (stand-in for XGBoost);
//! * [`forest::RandomForest`] — bagged CART trees (stand-in for
//!   scikit-learn's RandomForestRegressor).
//!
//! ## Example
//!
//! ```
//! use deepsd_baselines::features::tree_features;
//! use deepsd_baselines::gbdt::{Gbdt, GbdtParams};
//! use deepsd_features::{train_keys, FeatureConfig, FeatureExtractor};
//! use deepsd_simdata::{SimConfig, SimDataset};
//!
//! let ds = SimDataset::generate(&SimConfig::smoke(3));
//! let fcfg = FeatureConfig { window_l: 6, train_stride: 240, ..FeatureConfig::default() };
//! let mut fx = FeatureExtractor::new(&ds, fcfg.clone());
//! let keys = train_keys(ds.n_areas() as u16, 7..10, &fcfg);
//! let items = fx.extract_all(&keys);
//! let tab = tree_features(&items);
//! let model = Gbdt::fit(&tab, &GbdtParams { n_trees: 5, ..GbdtParams::default() });
//! assert_eq!(model.predict(&tab).len(), tab.n);
//! ```

#![warn(missing_docs)]
// Exact float comparisons in tests assert bit-reproducibility on purpose.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod average;
pub mod binning;
pub mod features;
pub mod forest;
pub mod gbdt;
pub mod lasso;
pub mod tree;

pub use average::EmpiricalAverage;
pub use features::{lasso_features, tree_features, Tabular};
pub use forest::{ForestParams, RandomForest};
pub use gbdt::{Gbdt, GbdtParams};
pub use lasso::{Lasso, LassoParams};
pub use tree::{RegressionTree, TreeParams};
