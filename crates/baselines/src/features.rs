//! Tabular feature representations for the baseline learners.
//!
//! §VI-C of the paper: "For fair comparisons, we use the same input
//! features for the above methods (except empirical average) as those
//! used in DeepSD" — identity features, the three real-time vectors,
//! their per-weekday histories, and the weather/traffic conditions.

use deepsd_features::Item;

/// A dense row-major tabular dataset.
#[derive(Debug, Clone)]
pub struct Tabular {
    /// Row-major feature matrix, `n * d`.
    pub x: Vec<f32>,
    /// Number of rows.
    pub n: usize,
    /// Number of features.
    pub d: usize,
    /// Targets (gaps).
    pub y: Vec<f32>,
}

impl Tabular {
    /// Feature row `i`.
    // deepsd-lint: allow(panic-reach, reason="row index bounded by the caller iterating this store's own n rows")
    pub fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.d..(i + 1) * self.d]
    }
}

/// Numeric encoding for tree learners: categorical ids enter as ordinal
/// values (trees split on them natively).
pub fn tree_features(items: &[Item]) -> Tabular {
    assert!(!items.is_empty(), "no items");
    let mut x = Vec::new();
    let mut y = Vec::with_capacity(items.len());
    let mut d = 0;
    for item in items {
        let start = x.len();
        x.push(item.key.area as f32);
        x.push(item.key.t as f32);
        x.push(item.weekday as f32);
        x.extend_from_slice(&item.v_sd);
        x.extend_from_slice(&item.v_lc);
        x.extend_from_slice(&item.v_wt);
        x.extend_from_slice(&item.h_sd);
        x.extend_from_slice(&item.h_lc);
        x.extend_from_slice(&item.h_wt);
        x.extend_from_slice(&item.h_sd_next);
        x.extend_from_slice(&item.h_lc_next);
        x.extend_from_slice(&item.h_wt_next);
        x.extend(item.weather_types.iter().map(|&t| t as f32));
        x.extend_from_slice(&item.weather_scalars);
        x.extend_from_slice(&item.traffic);
        y.push(item.gap);
        let row_d = x.len() - start;
        if d == 0 {
            d = row_d;
        } else {
            assert_eq!(d, row_d, "inconsistent item dims");
        }
    }
    Tabular {
        n: items.len(),
        d,
        x,
        y,
    }
}

/// Number of half-hour buckets used to one-hot the timeslot for linear
/// models (a full 1440-way one-hot would dominate the design matrix).
pub const LASSO_TIME_BUCKETS: usize = 48;

/// Linear-model encoding: one-hot AreaID, half-hour time bucket and
/// WeekID (LASSO "can not handle the categorical variables" — §VI-C),
/// numeric everything else.
pub fn lasso_features(items: &[Item], n_areas: usize) -> Tabular {
    assert!(!items.is_empty(), "no items");
    let mut x = Vec::new();
    let mut y = Vec::with_capacity(items.len());
    let mut d = 0;
    for item in items {
        let start = x.len();
        // One-hot area.
        let mut area = vec![0.0f32; n_areas];
        area[item.key.area as usize] = 1.0;
        x.extend_from_slice(&area);
        // One-hot half-hour bucket.
        let mut bucket = vec![0.0f32; LASSO_TIME_BUCKETS];
        bucket[(item.key.t as usize * LASSO_TIME_BUCKETS / 1440).min(LASSO_TIME_BUCKETS - 1)] = 1.0;
        x.extend_from_slice(&bucket);
        // One-hot weekday.
        let mut week = vec![0.0f32; 7];
        week[item.weekday as usize] = 1.0;
        x.extend_from_slice(&week);
        x.extend_from_slice(&item.v_sd);
        x.extend_from_slice(&item.v_lc);
        x.extend_from_slice(&item.v_wt);
        x.extend_from_slice(&item.h_sd);
        x.extend_from_slice(&item.h_lc);
        x.extend_from_slice(&item.h_wt);
        x.extend_from_slice(&item.h_sd_next);
        x.extend_from_slice(&item.weather_scalars);
        x.extend_from_slice(&item.traffic);
        y.push(item.gap);
        let row_d = x.len() - start;
        if d == 0 {
            d = row_d;
        } else {
            assert_eq!(d, row_d, "inconsistent item dims");
        }
    }
    Tabular {
        n: items.len(),
        d,
        x,
        y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsd_features::ItemKey;

    fn item(area: u16, t: u16, weekday: u8, gap: f32, l: usize) -> Item {
        let dim = 2 * l;
        Item {
            key: ItemKey { area, day: 7, t },
            weekday,
            gap,
            v_sd: vec![1.0; dim],
            v_lc: vec![2.0; dim],
            v_wt: vec![3.0; dim],
            h_sd: vec![0.5; 7 * dim],
            h_sd_next: vec![0.5; 7 * dim],
            h_lc: vec![0.5; 7 * dim],
            h_lc_next: vec![0.5; 7 * dim],
            h_wt: vec![0.5; 7 * dim],
            h_wt_next: vec![0.5; 7 * dim],
            weather_types: vec![2; l],
            weather_scalars: vec![0.4; dim],
            traffic: vec![0.25; 4 * l],
        }
    }

    #[test]
    fn tree_features_shape() {
        let l = 4;
        let items = vec![item(0, 100, 1, 3.0, l), item(5, 900, 6, 0.0, l)];
        let tab = tree_features(&items);
        assert_eq!(tab.n, 2);
        // 3 ids + 3·2L + 6·14L + L + 2L + 4L
        let expected = 3 + 3 * 2 * l + 6 * 14 * l + l + 2 * l + 4 * l;
        assert_eq!(tab.d, expected);
        assert_eq!(tab.y, vec![3.0, 0.0]);
        assert_eq!(tab.row(1)[0], 5.0);
        assert_eq!(tab.row(1)[1], 900.0);
    }

    #[test]
    fn lasso_features_one_hot_blocks() {
        let l = 4;
        let items = vec![item(2, 720, 3, 1.0, l)];
        let n_areas = 6;
        let tab = lasso_features(&items, n_areas);
        let row = tab.row(0);
        // Area one-hot.
        assert_eq!(row[2], 1.0);
        assert_eq!(row[..n_areas].iter().sum::<f32>(), 1.0);
        // Time bucket: 720 min = noon → bucket 24.
        let bucket = &row[n_areas..n_areas + LASSO_TIME_BUCKETS];
        assert_eq!(bucket[24], 1.0);
        assert_eq!(bucket.iter().sum::<f32>(), 1.0);
        // Weekday one-hot.
        let week = &row[n_areas + LASSO_TIME_BUCKETS..n_areas + LASSO_TIME_BUCKETS + 7];
        assert_eq!(week[3], 1.0);
    }

    #[test]
    #[should_panic(expected = "no items")]
    fn rejects_empty() {
        let _ = tree_features(&[]);
    }
}
