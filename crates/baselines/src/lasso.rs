//! LASSO linear regression via cyclic coordinate descent — the paper's
//! LASSO baseline (§VI-C; the authors use scikit-learn).
//!
//! Minimises `1/(2n) ‖y − Xβ − β₀‖² + α ‖β‖₁` with soft-thresholding
//! updates on standardised features; the intercept is unpenalised.

use crate::features::Tabular;
use serde::{Deserialize, Serialize};

/// LASSO hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LassoParams {
    /// ℓ1 penalty strength.
    pub alpha: f32,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the maximum coefficient change per sweep.
    pub tol: f32,
}

impl Default for LassoParams {
    fn default() -> Self {
        LassoParams {
            alpha: 0.01,
            max_iter: 60,
            tol: 1e-4,
        }
    }
}

/// A fitted LASSO model (stores standardisation statistics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lasso {
    intercept: f32,
    coef: Vec<f32>,
    mean: Vec<f32>,
    scale: Vec<f32>,
    /// Sweeps actually performed.
    pub iterations: usize,
}

impl Lasso {
    /// Fits the model by cyclic coordinate descent.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Tabular, params: &LassoParams) -> Lasso {
        assert!(data.n > 0, "empty dataset");
        let n = data.n;
        let d = data.d;

        // Standardise columns (constant columns get scale 1 → coef 0).
        let mut mean = vec![0.0f32; d];
        let mut scale = vec![0.0f32; d];
        for i in 0..n {
            let row = data.row(i);
            for (f, &v) in row.iter().enumerate() {
                mean[f] += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n as f32;
        }
        for i in 0..n {
            let row = data.row(i);
            for (f, &v) in row.iter().enumerate() {
                let c = v - mean[f];
                scale[f] += c * c;
            }
        }
        for s in scale.iter_mut() {
            *s = (*s / n as f32).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }

        // Column-major standardised design matrix for fast coordinate
        // sweeps.
        let mut xt = vec![0.0f32; n * d];
        for i in 0..n {
            let row = data.row(i);
            for f in 0..d {
                xt[f * n + i] = (row[f] - mean[f]) / scale[f];
            }
        }

        let y_mean = data.y.iter().sum::<f32>() / n as f32;
        // Residual r = y_centred − Xβ, with β = 0 initially.
        let mut residual: Vec<f32> = data.y.iter().map(|&v| v - y_mean).collect();
        let mut coef = vec![0.0f32; d];
        // Standardised columns all have ‖x‖²/n = 1 (up to numerical
        // noise), but compute exactly for robustness.
        let col_norm: Vec<f32> = (0..d)
            .map(|f| {
                let col = &xt[f * n..(f + 1) * n];
                col.iter().map(|v| v * v).sum::<f32>() / n as f32
            })
            .collect();

        let mut iterations = 0;
        for _ in 0..params.max_iter {
            iterations += 1;
            let mut max_delta = 0.0f32;
            for f in 0..d {
                if col_norm[f] <= 1e-12 {
                    continue;
                }
                let col = &xt[f * n..(f + 1) * n];
                // rho = x_fᵀ r / n + coef_f * norm
                let mut dot = 0.0f32;
                for (x, r) in col.iter().zip(residual.iter()) {
                    dot += x * r;
                }
                let rho = dot / n as f32 + coef[f] * col_norm[f];
                let new = soft_threshold(rho, params.alpha) / col_norm[f];
                let delta = new - coef[f];
                // deepsd-lint: allow(float-eq, reason="exact-zero skip: soft-threshold emits a bit-exact 0.0 for pruned coefficients")
                if delta != 0.0 {
                    for (x, r) in col.iter().zip(residual.iter_mut()) {
                        *r -= delta * x;
                    }
                    coef[f] = new;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < params.tol {
                break;
            }
        }

        Lasso {
            intercept: y_mean,
            coef,
            mean,
            scale,
            iterations,
        }
    }

    /// Predicts one raw feature row (clamped at zero — gaps are
    /// non-negative).
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        assert_eq!(row.len(), self.coef.len(), "row width mismatch");
        let mut out = self.intercept;
        for ((&v, &c), (&m, &s)) in row
            .iter()
            .zip(self.coef.iter())
            .zip(self.mean.iter().zip(self.scale.iter()))
        {
            // deepsd-lint: allow(float-eq, reason="exact-zero skip over lasso-pruned coefficients; 0.0 is bit-exact, not approximate")
            if c != 0.0 {
                out += c * (v - m) / s;
            }
        }
        out.max(0.0)
    }

    /// Predicts every row of a tabular dataset.
    pub fn predict(&self, data: &Tabular) -> Vec<f32> {
        (0..data.n).map(|i| self.predict_row(data.row(i))).collect()
    }

    /// Number of non-zero coefficients.
    pub fn nnz(&self) -> usize {
        // deepsd-lint: allow(float-eq, reason="sparsity count: pruned coefficients are bit-exact 0.0 by construction")
        self.coef.iter().filter(|&&c| c != 0.0).count()
    }

    /// Coefficients on the standardised scale.
    pub fn coefficients(&self) -> &[f32] {
        &self.coef
    }
}

fn soft_threshold(x: f32, alpha: f32) -> f32 {
    if x > alpha {
        x - alpha
    } else if x < -alpha {
        x + alpha
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, noise: f32) -> Tabular {
        // y = 2 x0 − 3 x1 + 0 x2 (+ deterministic pseudo-noise)
        let mut x = Vec::with_capacity(n * 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = ((i * 13) % 31) as f32 / 31.0;
            let b = ((i * 7) % 17) as f32 / 17.0;
            let c = ((i * 3) % 11) as f32 / 11.0;
            x.extend_from_slice(&[a, b, c]);
            y.push(2.0 * a - 3.0 * b + 5.0 + noise * ((i as f32) * 0.77).sin());
        }
        Tabular { x, n, d: 3, y }
    }

    #[test]
    fn recovers_linear_signal() {
        let data = toy(400, 0.0);
        let model = Lasso::fit(
            &data,
            &LassoParams {
                alpha: 1e-4,
                max_iter: 300,
                tol: 1e-7,
            },
        );
        let preds = model.predict(&data);
        // Predictions are clamped at 0; all targets here are ≥ 0.
        let mae: f32 = preds
            .iter()
            .zip(data.y.iter())
            .map(|(p, t)| (p - t).abs())
            .sum::<f32>()
            / data.n as f32;
        assert!(mae < 0.05, "mae = {mae}");
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn large_alpha_zeroes_everything() {
        let data = toy(200, 0.1);
        let model = Lasso::fit(
            &data,
            &LassoParams {
                alpha: 100.0,
                ..LassoParams::default()
            },
        );
        assert_eq!(model.nnz(), 0);
        // Prediction degenerates to the target mean.
        let mean = data.y.iter().sum::<f32>() / data.n as f32;
        assert!((model.predict_row(data.row(0)) - mean).abs() < 1e-5);
    }

    #[test]
    fn sparsity_increases_with_alpha() {
        let data = toy(300, 0.2);
        let nnz = |alpha: f32| {
            Lasso::fit(
                &data,
                &LassoParams {
                    alpha,
                    max_iter: 200,
                    tol: 1e-7,
                },
            )
            .nnz()
        };
        assert!(nnz(0.0001) >= nnz(0.5));
    }

    #[test]
    fn irrelevant_feature_is_dropped() {
        let data = toy(500, 0.0);
        let model = Lasso::fit(
            &data,
            &LassoParams {
                alpha: 0.05,
                max_iter: 300,
                tol: 1e-7,
            },
        );
        let coefs = model.coefficients();
        assert!(coefs[2].abs() < 0.05, "x2 is irrelevant: {coefs:?}");
        assert!(coefs[0] > 0.0 && coefs[1] < 0.0);
    }

    #[test]
    fn constant_feature_is_safe() {
        let mut data = toy(100, 0.0);
        // Overwrite x2 with a constant.
        for i in 0..data.n {
            data.x[i * 3 + 2] = 7.0;
        }
        let model = Lasso::fit(&data, &LassoParams::default());
        assert!(model.predict_row(data.row(0)).is_finite());
    }

    #[test]
    fn kkt_conditions_hold_at_convergence() {
        // At the optimum: |x_fᵀ r / n| ≤ alpha for zero coefficients,
        // and = alpha (in sign direction) for active ones.
        let data = toy(300, 0.05);
        let params = LassoParams {
            alpha: 0.02,
            max_iter: 500,
            tol: 1e-8,
        };
        let model = Lasso::fit(&data, &params);
        // Rebuild standardised design and residual.
        let n = data.n;
        let d = data.d;
        let resid: Vec<f32> = (0..n)
            .map(|i| data.y[i] - model_raw(&model, data.row(i)))
            .collect();
        for f in 0..d {
            let mut dot = 0.0f32;
            for (i, &r) in resid.iter().enumerate() {
                let xs = (data.row(i)[f] - model.mean[f]) / model.scale[f];
                dot += xs * r;
            }
            let grad = dot / n as f32;
            if model.coef[f] == 0.0 {
                assert!(
                    grad.abs() <= params.alpha + 1e-3,
                    "KKT violated at {f}: {grad}"
                );
            } else {
                assert!(
                    (grad - params.alpha * model.coef[f].signum()).abs() < 1e-3,
                    "KKT active-set violated at {f}: {grad}"
                );
            }
        }
    }

    /// Unclamped prediction, for the KKT check.
    fn model_raw(model: &Lasso, row: &[f32]) -> f32 {
        let mut out = model.intercept;
        for ((&v, &c), (&m, &s)) in row
            .iter()
            .zip(model.coef.iter())
            .zip(model.mean.iter().zip(model.scale.iter()))
        {
            out += c * (v - m) / s;
        }
        out
    }
}
