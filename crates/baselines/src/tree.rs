//! CART regression trees over binned features, shared by the GBDT and
//! random-forest learners.
//!
//! Split search uses per-bin histograms of `(count, sum)` and picks the
//! split maximising the variance-reduction gain
//! `sum_l²/n_l + sum_r²/n_r − sum²/n`.

use crate::binning::Binned;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tree growth parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Minimum gain to accept a split.
    pub min_gain: f64,
    /// Fraction of features considered at each split (`(0, 1]`).
    pub colsample: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_leaf: 20,
            min_gain: 1e-7,
            colsample: 1.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: u32,
        bin: u8,
        left: u32,
        right: u32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree to `targets` over the rows in `rows`.
    ///
    /// # Panics
    /// Panics if `rows` is empty or parameters are degenerate.
    pub fn fit(
        data: &Binned,
        rows: &[u32],
        targets: &[f32],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> RegressionTree {
        assert!(!rows.is_empty(), "tree needs samples");
        assert!(
            params.colsample > 0.0 && params.colsample <= 1.0,
            "bad colsample"
        );
        let mut tree = RegressionTree { nodes: Vec::new() };
        let mut rows_owned: Vec<u32> = rows.to_vec();
        tree.grow(data, &mut rows_owned, targets, params, rng, 0);
        tree
    }

    /// Recursively grows the subtree over `rows`, returning its node id.
    fn grow(
        &mut self,
        data: &Binned,
        rows: &mut [u32],
        targets: &[f32],
        params: &TreeParams,
        rng: &mut StdRng,
        depth: usize,
    ) -> u32 {
        let n = rows.len();
        let sum: f64 = rows.iter().map(|&r| targets[r as usize] as f64).sum();
        let mean = (sum / n as f64) as f32;

        let make_leaf = |tree: &mut RegressionTree| {
            let id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf { value: mean });
            id
        };

        if depth >= params.max_depth || n < 2 * params.min_samples_leaf {
            return make_leaf(self);
        }

        let Some((feature, bin, gain)) = self.best_split(data, rows, targets, sum, params, rng)
        else {
            return make_leaf(self);
        };
        if gain < params.min_gain {
            return make_leaf(self);
        }

        // Partition rows in place: codes <= bin go left.
        let mid = partition(rows, |&r| data.row(r as usize)[feature as usize] <= bin);
        if mid < params.min_samples_leaf || n - mid < params.min_samples_leaf {
            return make_leaf(self);
        }

        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Split {
            feature,
            bin,
            left: 0,
            right: 0,
        });
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.grow(data, left_rows, targets, params, rng, depth + 1);
        let right = self.grow(data, right_rows, targets, params, rng, depth + 1);
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[id as usize]
        {
            *l = left;
            *r = right;
        }
        id
    }

    /// Finds the best `(feature, bin, gain)` split over a column sample.
    fn best_split(
        &self,
        data: &Binned,
        rows: &[u32],
        targets: &[f32],
        total_sum: f64,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Option<(u32, u8, f64)> {
        let n = rows.len() as f64;
        let base = total_sum * total_sum / n;

        let features: Vec<usize> = if params.colsample >= 1.0 {
            (0..data.d).collect()
        } else {
            let k = ((data.d as f64 * params.colsample).ceil() as usize).clamp(1, data.d);
            let mut all: Vec<usize> = (0..data.d).collect();
            all.shuffle(rng);
            all.truncate(k);
            all
        };

        let mut best: Option<(u32, u8, f64)> = None;
        let mut hist_count = [0u32; 256];
        let mut hist_sum = [0f64; 256];
        for &f in &features {
            let bins = data.n_bins(f);
            if bins < 2 {
                continue;
            }
            hist_count[..bins].fill(0);
            hist_sum[..bins].fill(0.0);
            for &r in rows {
                let b = data.row(r as usize)[f] as usize;
                hist_count[b] += 1;
                hist_sum[b] += targets[r as usize] as f64;
            }
            let mut left_n = 0u32;
            let mut left_sum = 0.0f64;
            for b in 0..bins - 1 {
                left_n += hist_count[b];
                left_sum += hist_sum[b];
                let right_n = rows.len() as u32 - left_n;
                if (left_n as usize) < params.min_samples_leaf
                    || (right_n as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let gain = left_sum * left_sum / left_n as f64
                    + right_sum * right_sum / right_n as f64
                    - base;
                if best.is_none_or(|(_, _, g)| gain > g) && gain.is_finite() {
                    best = Some((f as u32, b as u8, gain));
                }
            }
        }
        best
    }

    /// Predicts one binned row.
    pub fn predict_codes(&self, codes: &[u8]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    bin,
                    left,
                    right,
                } => {
                    node = if codes[*feature as usize] <= *bin {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, *left as usize).max(walk(nodes, *right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Stable-ish in-place partition; returns the number of elements
/// satisfying the predicate (moved to the front).
fn partition<T: Copy>(xs: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut i = 0;
    for j in 0..xs.len() {
        if pred(&xs[j]) {
            xs.swap(i, j);
            i += 1;
        }
    }
    i
}

/// Draws a bootstrap sample of `[0, n)` with replacement.
pub fn bootstrap_rows(n: usize, rng: &mut StdRng) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Tabular;
    use rand::SeedableRng;

    fn binned(cols: Vec<Vec<f32>>, y: Vec<f32>) -> (Binned, Vec<f32>) {
        let n = cols[0].len();
        let d = cols.len();
        let mut x = Vec::with_capacity(n * d);
        for i in 0..n {
            for c in &cols {
                x.push(c[i]);
            }
        }
        (
            Binned::from_tabular(&Tabular {
                x,
                n,
                d,
                y: y.clone(),
            }),
            y,
        )
    }

    #[test]
    fn splits_a_step_function_exactly() {
        let xs: Vec<f32> = (0..200).map(|v| v as f32).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v < 100.0 { 1.0 } else { 5.0 })
            .collect();
        let (data, y) = binned(vec![xs], y);
        let rows: Vec<u32> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(
            &data,
            &rows,
            &y,
            &TreeParams {
                max_depth: 2,
                min_samples_leaf: 5,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!((tree.predict_codes(&data.encode_row(&[10.0])) - 1.0).abs() < 0.05);
        assert!((tree.predict_codes(&data.encode_row(&[150.0])) - 5.0).abs() < 0.05);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<f32> = (0..50).map(|v| v as f32).collect();
        let (data, y) = binned(vec![xs], vec![3.0; 50]);
        let rows: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = RegressionTree::fit(&data, &rows, &y, &TreeParams::default(), &mut rng);
        assert_eq!(tree.n_leaves(), 1);
        assert!((tree.predict_codes(&data.encode_row(&[25.0])) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<f32> = (0..256).map(|v| v as f32).collect();
        let y: Vec<f32> = xs.iter().map(|&v| (v * 0.1).sin()).collect();
        let (data, y) = binned(vec![xs], y);
        let rows: Vec<u32> = (0..256).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = RegressionTree::fit(
            &data,
            &rows,
            &y,
            &TreeParams {
                max_depth: 3,
                min_samples_leaf: 1,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let xs: Vec<f32> = (0..100).map(|v| v as f32).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v < 3.0 { 100.0 } else { 0.0 })
            .collect();
        let (data, y) = binned(vec![xs], y);
        let rows: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let tree = RegressionTree::fit(
            &data,
            &rows,
            &y,
            &TreeParams {
                min_samples_leaf: 10,
                ..TreeParams::default()
            },
            &mut rng,
        );
        // The first-3-rows split is forbidden; predictions are pooled.
        let p = tree.predict_codes(&data.encode_row(&[0.0]));
        assert!(p < 100.0);
    }

    #[test]
    fn picks_informative_feature_among_noise() {
        let n = 300;
        let mut rng = StdRng::seed_from_u64(5);
        let noise: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let signal: Vec<f32> = (0..n).map(|v| (v % 2) as f32).collect();
        let y: Vec<f32> = signal.iter().map(|&s| s * 10.0).collect();
        let (data, y) = binned(vec![noise, signal], y);
        let rows: Vec<u32> = (0..n as u32).collect();
        let tree = RegressionTree::fit(
            &data,
            &rows,
            &y,
            &TreeParams {
                max_depth: 1,
                min_samples_leaf: 5,
                ..TreeParams::default()
            },
            &mut rng,
        );
        assert!((tree.predict_codes(&data.encode_row(&[0.0, 0.0])) - 0.0).abs() < 0.5);
        assert!((tree.predict_codes(&data.encode_row(&[0.0, 1.0])) - 10.0).abs() < 0.5);
    }

    #[test]
    fn bootstrap_covers_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let rows = bootstrap_rows(100, &mut rng);
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|&r| r < 100));
        // With replacement: near-certainly some duplicate exists.
        let unique: std::collections::HashSet<_> = rows.iter().collect();
        assert!(unique.len() < 100);
    }

    #[test]
    fn partition_helper() {
        let mut xs = vec![5, 1, 4, 2, 3];
        let k = partition(&mut xs, |&v| v <= 2);
        assert_eq!(k, 2);
        assert!(xs[..k].iter().all(|&v| v <= 2));
        assert!(xs[k..].iter().all(|&v| v > 2));
    }
}
