//! Feature binning for histogram-based tree learning.
//!
//! Each feature is quantised into at most 256 bins whose edges are
//! (approximate) quantiles of the training distribution. Trees then
//! search splits over bins instead of raw values — the standard
//! LightGBM/XGBoost-histogram approach, which makes split finding
//! O(n + bins) per feature.

use crate::features::Tabular;

/// Maximum number of bins per feature.
pub const MAX_BINS: usize = 255;

/// A binned copy of a tabular dataset.
#[derive(Debug, Clone)]
pub struct Binned {
    /// Row-major bin indices, `n * d`.
    pub codes: Vec<u8>,
    /// Number of rows.
    pub n: usize,
    /// Number of features.
    pub d: usize,
    /// Per-feature bin upper edges (`edges[f][b]` is the largest raw
    /// value mapped to bin `b`; the last bin is unbounded).
    pub edges: Vec<Vec<f32>>,
}

impl Binned {
    /// Bins a dataset using per-feature quantile edges.
    pub fn from_tabular(tab: &Tabular) -> Binned {
        let mut edges = Vec::with_capacity(tab.d);
        let mut col = vec![0.0f32; tab.n];
        for f in 0..tab.d {
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = tab.x[i * tab.d + f];
            }
            edges.push(quantile_edges(&mut col));
        }
        let mut codes = vec![0u8; tab.n * tab.d];
        for i in 0..tab.n {
            let row = tab.row(i);
            for (f, &v) in row.iter().enumerate() {
                codes[i * tab.d + f] = bin_of(&edges[f], v);
            }
        }
        Binned {
            codes,
            n: tab.n,
            d: tab.d,
            edges,
        }
    }

    /// Bins a single raw feature row with the training edges.
    pub fn encode_row(&self, row: &[f32]) -> Vec<u8> {
        assert_eq!(row.len(), self.d, "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(f, &v)| bin_of(&self.edges[f], v))
            .collect()
    }

    /// Bin codes of row `i`.
    // deepsd-lint: allow(panic-reach, reason="row index bounded by the caller iterating this store's own n rows")
    pub fn row(&self, i: usize) -> &[u8] {
        &self.codes[i * self.d..(i + 1) * self.d]
    }

    /// Number of bins actually used by feature `f` (edges + 1).
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }
}

/// Computes quantile bin edges for one feature column (sorts in place).
fn quantile_edges(col: &mut [f32]) -> Vec<f32> {
    col.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
    let n = col.len();
    let mut edges = Vec::new();
    if n == 0 {
        return edges;
    }
    let step = (n as f64 / (MAX_BINS + 1) as f64).max(1.0);
    let mut prev = f32::NEG_INFINITY;
    let mut pos = step;
    while (pos as usize) < n && edges.len() < MAX_BINS {
        let v = col[pos as usize];
        if v > prev {
            edges.push(v);
            prev = v;
        }
        pos += step;
    }
    // Drop a trailing edge equal to the max so the last bin is non-empty.
    if let Some(&last) = edges.last() {
        if last >= col[n - 1] {
            edges.pop();
        }
    }
    edges
}

/// Maps a raw value to its bin index given the edges (`value <= edges[b]`
/// → bin `b`; greater than all edges → last bin).
fn bin_of(edges: &[f32], value: f32) -> u8 {
    let idx = edges.partition_point(|&e| e < value);
    idx.min(MAX_BINS) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tab(cols: Vec<Vec<f32>>, y: Vec<f32>) -> Tabular {
        let n = cols[0].len();
        let d = cols.len();
        let mut x = Vec::with_capacity(n * d);
        for i in 0..n {
            for c in &cols {
                x.push(c[i]);
            }
        }
        Tabular { x, n, d, y }
    }

    #[test]
    fn binning_preserves_order() {
        let t = tab(vec![(0..100).map(|v| v as f32).collect()], vec![0.0; 100]);
        let b = Binned::from_tabular(&t);
        let mut prev = 0u8;
        for i in 0..100 {
            let code = b.row(i)[0];
            assert!(code >= prev, "bins must be monotone in raw value");
            prev = code;
        }
    }

    #[test]
    fn constant_feature_gets_one_bin() {
        let t = tab(vec![vec![5.0; 50]], vec![0.0; 50]);
        let b = Binned::from_tabular(&t);
        assert_eq!(b.n_bins(0), 1);
        assert!(b.codes.iter().all(|&c| c == 0));
    }

    #[test]
    fn encode_row_matches_training_codes() {
        let t = tab(
            vec![
                (0..64).map(|v| (v * v) as f32).collect(),
                (0..64).map(|v| -(v as f32)).collect(),
            ],
            vec![0.0; 64],
        );
        let b = Binned::from_tabular(&t);
        for i in 0..t.n {
            let enc = b.encode_row(t.row(i));
            assert_eq!(&enc[..], b.row(i), "row {i}");
        }
    }

    #[test]
    fn unseen_extreme_values_clamp_to_end_bins() {
        let t = tab(vec![(0..100).map(|v| v as f32).collect()], vec![0.0; 100]);
        let b = Binned::from_tabular(&t);
        let low = b.encode_row(&[-1000.0])[0];
        let high = b.encode_row(&[1000.0])[0];
        assert_eq!(low, 0);
        assert_eq!(high as usize, b.n_bins(0) - 1);
    }

    #[test]
    fn binary_feature_two_bins() {
        let t = tab(vec![[0.0, 1.0].repeat(50)], vec![0.0; 100]);
        let b = Binned::from_tabular(&t);
        assert_eq!(b.n_bins(0), 2);
        assert_eq!(b.encode_row(&[0.0])[0], 0);
        assert_eq!(b.encode_row(&[1.0])[0], 1);
    }
}
