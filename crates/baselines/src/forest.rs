//! Random forest regressor — the paper's RF baseline (§VI-C).
//!
//! Bagging: each tree is fitted on a bootstrap sample with per-split
//! feature subsampling; the forest predicts the mean of its trees.

use crate::binning::Binned;
use crate::features::Tabular;
use crate::tree::{bootstrap_rows, RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Tree growth parameters (colsample is the per-split feature
    /// fraction; √d-like fractions work well).
    pub tree: TreeParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 40,
            tree: TreeParams {
                max_depth: 12,
                min_samples_leaf: 5,
                min_gain: 1e-9,
                colsample: 0.2,
            },
            seed: 9,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    #[serde(skip)]
    binner: Option<Binned>,
}

impl RandomForest {
    /// Fits the forest to a tabular dataset.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn fit(data: &Tabular, params: &ForestParams) -> RandomForest {
        assert!(data.n > 0, "empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");
        let binned = Binned::from_tabular(data);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let trees = (0..params.n_trees)
            .map(|_| {
                let rows = bootstrap_rows(data.n, &mut rng);
                RegressionTree::fit(&binned, &rows, &data.y, &params.tree, &mut rng)
            })
            .collect();
        RandomForest {
            trees,
            binner: Some(binned),
        }
    }

    /// Predicts one raw feature row (mean of trees, clamped at zero).
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let binner = self
            .binner
            .as_ref()
            .expect("fitted model retains its binner");
        let codes = binner.encode_row(row);
        let sum: f32 = self.trees.iter().map(|t| t.predict_codes(&codes)).sum();
        (sum / self.trees.len() as f32).max(0.0)
    }

    /// Predicts every row of a tabular dataset.
    pub fn predict(&self, data: &Tabular) -> Vec<f32> {
        (0..data.n).map(|i| self.predict_row(data.row(i))).collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, f: impl Fn(f32, f32) -> f32) -> Tabular {
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 13) as f32;
            let b = ((i * 5) % 19) as f32;
            x.push(a);
            x.push(b);
            y.push(f(a, b));
        }
        Tabular { x, n, d: 2, y }
    }

    fn params(n_trees: usize) -> ForestParams {
        ForestParams {
            n_trees,
            tree: TreeParams {
                max_depth: 8,
                min_samples_leaf: 2,
                min_gain: 1e-9,
                colsample: 1.0,
            },
            seed: 2,
        }
    }

    #[test]
    fn fits_simple_signal() {
        let data = toy(600, |a, b| 3.0 * a + b);
        let forest = RandomForest::fit(&data, &params(25));
        let preds = forest.predict(&data);
        let mae: f32 = preds
            .iter()
            .zip(data.y.iter())
            .map(|(p, t)| (p - t).abs())
            .sum::<f32>()
            / data.n as f32;
        assert!(mae < 2.0, "mae = {mae}");
    }

    #[test]
    fn averaging_tames_variance() {
        // A forest of many trees should not be worse than a single tree.
        let data = toy(400, |a, b| a * b * 0.1 + a);
        let mse = |n_trees| {
            let forest = RandomForest::fit(&data, &params(n_trees));
            forest
                .predict(&data)
                .iter()
                .zip(data.y.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
        };
        assert!(mse(30) <= mse(1) * 1.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(200, |a, b| a + b);
        let f1 = RandomForest::fit(&data, &params(10));
        let f2 = RandomForest::fit(&data, &params(10));
        assert_eq!(f1.predict(&data), f2.predict(&data));
    }

    #[test]
    fn nonnegative_predictions() {
        let data = toy(150, |a, _| a - 20.0);
        let forest = RandomForest::fit(&data, &params(8));
        assert!(forest.predict(&data).iter().all(|&p| p >= 0.0));
    }
}
