//! The Empirical Average baseline (§VI-C): for each `(area, timeslot)`
//! the prediction is the mean historical gap at that slot over the
//! training days.

use deepsd_features::{FeatureExtractor, ItemKey};
use std::collections::HashMap;

/// Empirical-average gap predictor.
#[derive(Debug, Clone, Default)]
pub struct EmpiricalAverage {
    by_slot: HashMap<(u16, u16), f32>,
    by_area: HashMap<u16, f32>,
    global: f32,
}

impl EmpiricalAverage {
    /// Fits the averages from training keys (gaps come from the
    /// extractor's ground truth).
    pub fn fit(extractor: &FeatureExtractor<'_>, keys: &[ItemKey]) -> Self {
        assert!(!keys.is_empty(), "no training keys");
        let mut slot_sum: HashMap<(u16, u16), (f64, u32)> = HashMap::new();
        let mut area_sum: HashMap<u16, (f64, u32)> = HashMap::new();
        let mut total = 0.0f64;
        for &key in keys {
            let gap = extractor.gap(key) as f64;
            let s = slot_sum.entry((key.area, key.t)).or_insert((0.0, 0));
            s.0 += gap;
            s.1 += 1;
            let a = area_sum.entry(key.area).or_insert((0.0, 0));
            a.0 += gap;
            a.1 += 1;
            total += gap;
        }
        EmpiricalAverage {
            by_slot: slot_sum
                .into_iter()
                .map(|(k, (s, c))| (k, (s / c as f64) as f32))
                .collect(),
            by_area: area_sum
                .into_iter()
                .map(|(k, (s, c))| (k, (s / c as f64) as f32))
                .collect(),
            global: (total / keys.len() as f64) as f32,
        }
    }

    /// Predicts the gap for a key: the slot average when the slot was
    /// seen in training, else the area average, else the global mean.
    pub fn predict(&self, key: ItemKey) -> f32 {
        self.by_slot
            .get(&(key.area, key.t))
            .or_else(|| self.by_area.get(&key.area))
            .copied()
            .unwrap_or(self.global)
    }

    /// Predicts a batch of keys.
    pub fn predict_all(&self, keys: &[ItemKey]) -> Vec<f32> {
        keys.iter().map(|&k| self.predict(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsd_features::{FeatureConfig, FeatureExtractor};
    use deepsd_simdata::{SimConfig, SimDataset};

    #[test]
    fn averages_match_manual_computation() {
        let ds = SimDataset::generate(&SimConfig::smoke(61));
        let fx = FeatureExtractor::new(&ds, FeatureConfig::default());
        let keys: Vec<ItemKey> = (2..10)
            .map(|day| ItemKey {
                area: 1,
                day,
                t: 480,
            })
            .collect();
        let avg = EmpiricalAverage::fit(&fx, &keys);
        let manual: f64 = keys.iter().map(|&k| fx.gap(k) as f64).sum::<f64>() / keys.len() as f64;
        let pred = avg.predict(ItemKey {
            area: 1,
            day: 13,
            t: 480,
        });
        assert!((pred as f64 - manual).abs() < 1e-4);
    }

    #[test]
    fn fallback_chain() {
        let ds = SimDataset::generate(&SimConfig::smoke(62));
        let fx = FeatureExtractor::new(&ds, FeatureConfig::default());
        let keys = vec![ItemKey {
            area: 0,
            day: 3,
            t: 480,
        }];
        let avg = EmpiricalAverage::fit(&fx, &keys);
        // Unseen slot of a seen area → area average == slot average here.
        let area_fallback = avg.predict(ItemKey {
            area: 0,
            day: 4,
            t: 990,
        });
        assert_eq!(
            area_fallback,
            avg.predict(ItemKey {
                area: 0,
                day: 9,
                t: 480
            })
        );
        // Unseen area → global mean.
        let global = avg.predict(ItemKey {
            area: 5,
            day: 4,
            t: 990,
        });
        assert_eq!(global, avg.global);
    }

    #[test]
    fn predict_all_matches_predict() {
        let ds = SimDataset::generate(&SimConfig::smoke(63));
        let fx = FeatureExtractor::new(&ds, FeatureConfig::default());
        let keys: Vec<ItemKey> = (0..6)
            .map(|a| ItemKey {
                area: a,
                day: 5,
                t: 600,
            })
            .collect();
        let avg = EmpiricalAverage::fit(&fx, &keys);
        let batch = avg.predict_all(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batch[i], avg.predict(k));
        }
    }
}
