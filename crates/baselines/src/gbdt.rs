//! Gradient-boosted decision trees for squared loss — the paper's GBDT
//! baseline (§VI-C; the authors use XGBoost).
//!
//! With squared loss the negative gradient is the residual, so each
//! round fits a regression tree to the current residuals and the
//! ensemble adds `shrinkage × tree` to the prediction.

use crate::binning::Binned;
use crate::features::Tabular;
use crate::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Shrinkage / learning rate.
    pub shrinkage: f32,
    /// Row subsampling per round (`(0, 1]`).
    pub subsample: f64,
    /// Tree growth parameters.
    pub tree: TreeParams,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 80,
            shrinkage: 0.1,
            subsample: 0.7,
            tree: TreeParams {
                max_depth: 6,
                min_samples_leaf: 20,
                min_gain: 1e-6,
                colsample: 0.3,
            },
            seed: 5,
        }
    }
}

/// A fitted gradient-boosting ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    base: f32,
    shrinkage: f32,
    trees: Vec<RegressionTree>,
    #[serde(skip)]
    binner: Option<Binned>,
}

impl Gbdt {
    /// Fits the ensemble to a tabular dataset.
    ///
    /// # Panics
    /// Panics on an empty dataset or degenerate parameters.
    pub fn fit(data: &Tabular, params: &GbdtParams) -> Gbdt {
        assert!(data.n > 0, "empty dataset");
        assert!(params.n_trees > 0, "need at least one tree");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "bad subsample"
        );
        let binned = Binned::from_tabular(data);
        let mut rng = StdRng::seed_from_u64(params.seed);

        let base = data.y.iter().map(|&v| v as f64).sum::<f64>() / data.n as f64;
        let base = base as f32;
        let mut pred: Vec<f32> = vec![base; data.n];
        let mut residual: Vec<f32> = vec![0.0; data.n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let all_rows: Vec<u32> = (0..data.n as u32).collect();
        let sample_size = ((data.n as f64 * params.subsample).ceil() as usize).clamp(1, data.n);

        for _ in 0..params.n_trees {
            for ((r, &y), &p) in residual.iter_mut().zip(data.y.iter()).zip(pred.iter()) {
                *r = y - p;
            }
            let rows: Vec<u32> = if sample_size == data.n {
                all_rows.clone()
            } else {
                let mut shuffled = all_rows.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(sample_size);
                shuffled
            };
            let tree = RegressionTree::fit(&binned, &rows, &residual, &params.tree, &mut rng);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += params.shrinkage * tree.predict_codes(binned.row(i));
            }
            trees.push(tree);
        }
        Gbdt {
            base,
            shrinkage: params.shrinkage,
            trees,
            binner: Some(binned),
        }
    }

    /// Predicts one raw feature row. Predictions are clamped at zero
    /// (gaps are non-negative).
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let binner = self
            .binner
            .as_ref()
            .expect("fitted model retains its binner");
        let codes = binner.encode_row(row);
        let mut out = self.base;
        for tree in &self.trees {
            out += self.shrinkage * tree.predict_codes(&codes);
        }
        out.max(0.0)
    }

    /// Predicts every row of a tabular dataset.
    pub fn predict(&self, data: &Tabular) -> Vec<f32> {
        (0..data.n).map(|i| self.predict_row(data.row(i))).collect()
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, f: impl Fn(f32, f32) -> f32) -> Tabular {
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i % 17) as f32;
            let b = ((i * 7) % 23) as f32;
            x.push(a);
            x.push(b);
            y.push(f(a, b));
        }
        Tabular { x, n, d: 2, y }
    }

    fn small_params(n_trees: usize) -> GbdtParams {
        GbdtParams {
            n_trees,
            shrinkage: 0.3,
            subsample: 1.0,
            tree: TreeParams {
                max_depth: 4,
                min_samples_leaf: 4,
                min_gain: 1e-9,
                colsample: 1.0,
            },
            seed: 1,
        }
    }

    #[test]
    fn fits_additive_function() {
        let data = toy(600, |a, b| a + 0.5 * b);
        let model = Gbdt::fit(&data, &small_params(60));
        let preds = model.predict(&data);
        let mae: f32 = preds
            .iter()
            .zip(data.y.iter())
            .map(|(p, t)| (p - t).abs())
            .sum::<f32>()
            / data.n as f32;
        assert!(mae < 0.8, "mae = {mae}");
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let data = toy(500, |a, b| a * 0.7 + (b - 10.0).abs());
        let err = |n_trees: usize| {
            let model = Gbdt::fit(&data, &small_params(n_trees));
            let preds = model.predict(&data);
            preds
                .iter()
                .zip(data.y.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
        };
        assert!(err(40) < err(5));
    }

    #[test]
    fn single_tree_predicts_near_mean_plus_step() {
        let data = toy(200, |_, _| 4.0);
        let model = Gbdt::fit(&data, &small_params(1));
        let p = model.predict_row(data.row(0));
        assert!((p - 4.0).abs() < 1e-4);
    }

    #[test]
    fn predictions_are_clamped_nonnegative() {
        let data = toy(100, |a, _| a - 8.0); // many negative targets
        let model = Gbdt::fit(&data, &small_params(10));
        let preds = model.predict(&data);
        assert!(preds.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn subsampling_still_learns() {
        let data = toy(800, |a, b| 2.0 * a + b);
        let mut params = small_params(80);
        params.subsample = 0.5;
        params.tree.colsample = 0.5;
        let model = Gbdt::fit(&data, &params);
        let preds = model.predict(&data);
        let mae: f32 = preds
            .iter()
            .zip(data.y.iter())
            .map(|(p, t)| (p - t).abs())
            .sum::<f32>()
            / data.n as f32;
        assert!(mae < 2.5, "mae = {mae}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(300, |a, b| a + b);
        let m1 = Gbdt::fit(&data, &small_params(15));
        let m2 = Gbdt::fit(&data, &small_params(15));
        assert_eq!(m1.predict(&data), m2.predict(&data));
    }
}
