//! The single-threaded micro-batching engine.
//!
//! Exactly one engine loop exists per daemon and it is the only code
//! that touches the `OnlinePredictor` — connection handlers never call
//! the model. Each pass drains up to `max_batch` jobs from the queue,
//! applies observes in arrival order, then coalesces predict jobs for
//! the same `(day, t)` slot into a single `predict_all_report` call
//! whose result answers every waiting client. The feed health of each
//! served slot is folded into the [`CircuitBreaker`], and the breaker's
//! position is mirrored into the shared readiness flag for `/readyz`.
//!
//! Ordering is deterministic: observes run before predicts within a
//! batch, predict groups run in first-seen order, and replies within a
//! group follow admission order. Only deadline expiry depends on real
//! time, and that check is confined to [`crate::deadline`].

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::deadline::Stopwatch;
use crate::http::{json_string, Response};
use crate::queue::{Job, JobKind, JobQueue};
use deepsd::continual::Handoff;
use deepsd::model::Predictor;
use deepsd::serving::{OnlinePredictor, ServingReport};
use deepsd::telemetry::Telemetry;
use deepsd_features::ItemSource;
use deepsd_simdata::Order;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// How long an idle engine sleeps before re-checking the shutdown flag
/// (shutdown also wakes the queue's condvar, so drain starts promptly).
const IDLE_POLL: Duration = Duration::from_millis(20);

/// What the engine did over its lifetime; returned by [`Engine::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Non-empty dequeue passes.
    pub batches: u64,
    /// `predict_all_report` invocations (one per distinct `(day, t)`
    /// slot with at least one unexpired request).
    pub predict_calls: u64,
    /// Predict requests answered from a coalesced slot — i.e. requests
    /// beyond the first in their group, served without extra model work.
    pub coalesced: u64,
    /// Observe jobs applied.
    pub observes: u64,
    /// Requests answered `503` because their deadline expired in queue.
    pub expired: u64,
    /// Requests answered `200`.
    pub served: u64,
    /// Promoted continual-learning snapshots installed between batches.
    pub swaps: u64,
}

/// Wiring between the engine and a background continual-learning
/// shadow trainer (see `deepsd::continual`).
#[derive(Debug, Clone)]
pub struct ContinualHooks {
    /// Every observed order batch is forwarded here so the shadow
    /// trainer sees exactly the stream serving validated. Send errors
    /// are ignored: a finished trainer must not break serving.
    pub orders: mpsc::Sender<Vec<Order>>,
    /// Promoted snapshots arrive through this slot.
    pub handoff: Handoff,
    /// Generation currently installed in serving, mirrored for
    /// `/readyz`. Only the engine writes it.
    pub generation: Arc<AtomicU64>,
}

/// The micro-batching loop. Construct with [`Engine::new`], then call
/// [`Engine::run`] on the thread that owns the predictor.
#[derive(Debug)]
pub struct Engine {
    telemetry: Telemetry,
    breaker: CircuitBreaker,
    max_batch: usize,
    stats: EngineStats,
    continual: Option<ContinualHooks>,
    generation: u64,
}

impl Engine {
    /// An engine batching up to `max_batch` jobs per pass.
    pub fn new(telemetry: Telemetry, breaker: CircuitBreaker, max_batch: usize) -> Engine {
        Engine {
            telemetry,
            breaker,
            max_batch: max_batch.max(1),
            stats: EngineStats::default(),
            continual: None,
            generation: 0,
        }
    }

    /// Attaches continual-learning wiring: observed orders are forwarded
    /// to the shadow trainer and promoted snapshots are installed
    /// between micro-batches.
    pub fn set_continual(&mut self, hooks: ContinualHooks) {
        self.continual = Some(hooks);
    }

    /// Drains the queue until `shutdown` is set *and* the queue is
    /// empty (graceful drain: already-admitted jobs are still served).
    /// Mirrors breaker readiness into `ready` after every predict call.
    pub fn run<P: Predictor + Sync, X: ItemSource>(
        mut self,
        predictor: &mut OnlinePredictor<P, X>,
        queue: &JobQueue,
        shutdown: &AtomicBool,
        ready: &AtomicBool,
    ) -> EngineStats {
        loop {
            let jobs = queue.pop_batch(self.max_batch, IDLE_POLL);
            // Model swaps happen here, strictly between micro-batches:
            // every job in the batch below is answered by one model
            // generation, so no response mixes old and new weights.
            self.install_promotion(predictor);
            if jobs.is_empty() {
                if shutdown.load(Ordering::SeqCst) && queue.is_empty() {
                    break;
                }
                continue;
            }
            self.stats.batches += 1;
            self.telemetry.inc_counter("serve_engine_batches_total");
            self.process(predictor, jobs, ready);
        }
        self.stats
    }

    /// Installs the latest promoted snapshot, if any. Called only at
    /// micro-batch boundaries by [`Engine::run`].
    fn install_promotion<P: Predictor + Sync, X: ItemSource>(
        &mut self,
        predictor: &mut OnlinePredictor<P, X>,
    ) {
        let Some(hooks) = &self.continual else {
            return;
        };
        let Some(promoted) = hooks.handoff.take() else {
            return;
        };
        if predictor.install_snapshot(&promoted.snapshot) {
            self.generation = promoted.generation;
            hooks
                .generation
                .store(promoted.generation, Ordering::SeqCst);
            self.stats.swaps += 1;
            self.telemetry
                .set_gauge("serve_model_generation", promoted.generation as f64);
            self.telemetry.inc_counter("serve_model_swaps_total");
        }
    }

    /// One batch: observes in arrival order, then predicts coalesced by
    /// `(day, t)` in first-seen order.
    fn process<P: Predictor + Sync, X: ItemSource>(
        &mut self,
        predictor: &mut OnlinePredictor<P, X>,
        jobs: Vec<Job>,
        ready: &AtomicBool,
    ) {
        let mut predicts: Vec<Job> = Vec::with_capacity(jobs.len());
        for job in jobs {
            self.telemetry.observe(
                "time_serve_queue_wait_seconds",
                job.queued.elapsed_seconds(),
            );
            match job.kind {
                JobKind::Observe { .. } => self.run_observe(predictor, job),
                JobKind::Predict { .. } => predicts.push(job),
            }
        }

        // Group by slot, preserving first-seen order so the same
        // admission sequence always produces the same predict sequence.
        let mut groups: Vec<((u16, u16), Vec<Job>)> = Vec::new();
        for job in predicts {
            let JobKind::Predict { day, t, .. } = job.kind else {
                continue;
            };
            match groups.iter_mut().find(|(slot, _)| *slot == (day, t)) {
                Some((_, members)) => members.push(job),
                None => groups.push(((day, t), vec![job])),
            }
        }
        for ((day, t), members) in groups {
            self.run_predict_group(predictor, day, t, members, ready);
        }
    }

    fn run_observe<P: Predictor + Sync, X: ItemSource>(
        &mut self,
        predictor: &mut OnlinePredictor<P, X>,
        job: Job,
    ) {
        if self.expire_if_late(&job) {
            return;
        }
        let JobKind::Observe { orders } = job.kind else {
            return;
        };
        let report = predictor.observe_all(&orders);
        self.stats.observes += 1;
        self.stats.served += 1;
        self.telemetry.inc_counter("serve_observe_jobs_total");
        self.telemetry
            .add_counter("serve_observed_orders_total", report.applied as u64);
        let mut body = format!(
            "{{\"attempted\":{},\"applied\":{},\"failed\":{}",
            report.attempted, report.applied, report.failed
        );
        if let Some(err) = report.first_error() {
            body.push_str(&format!(
                ",\"first_error\":{}",
                json_string(&err.to_string())
            ));
        }
        body.push('}');
        let _ = job.reply.send(Response::json(200, body));
        if let Some(hooks) = &self.continual {
            // The reply is already on its way; trainer backpressure or
            // shutdown must not affect the client.
            let _ = hooks.orders.send(orders);
        }
    }

    fn run_predict_group<P: Predictor + Sync, X: ItemSource>(
        &mut self,
        predictor: &mut OnlinePredictor<P, X>,
        day: u16,
        t: u16,
        members: Vec<Job>,
        ready: &AtomicBool,
    ) {
        let live: Vec<Job> = members
            .into_iter()
            .filter(|job| !self.expire_if_late(job))
            .collect();
        if live.is_empty() {
            return;
        }

        let timer = Stopwatch::start();
        let report = predictor.predict_all_report(day, t);
        self.telemetry
            .observe("time_serve_batch_seconds", timer.elapsed_seconds());
        self.stats.predict_calls += 1;
        self.stats.coalesced += (live.len() as u64).saturating_sub(1);
        self.telemetry.inc_counter("serve_predict_groups_total");
        self.telemetry.add_counter(
            "serve_coalesced_requests_total",
            (live.len() as u64).saturating_sub(1),
        );

        let state = self.breaker.record(report.feeds.degraded());
        ready.store(state == BreakerState::Closed, Ordering::SeqCst);
        self.telemetry.set_gauge(
            "serve_breaker_open",
            if state == BreakerState::Closed {
                0.0
            } else {
                1.0
            },
        );
        self.telemetry
            .set_counter("serve_breaker_trips_total", self.breaker.trips());

        for job in live {
            let area = match job.kind {
                JobKind::Predict { area, .. } => area,
                JobKind::Observe { .. } => None,
            };
            let resp = render_prediction(&report, day, t, area, state, self.generation);
            if resp.status == 200 {
                self.stats.served += 1;
            }
            let _ = job.reply.send(resp);
        }
    }

    /// Answers `503` (and counts it) when the job's deadline has
    /// already expired; returns whether it did.
    fn expire_if_late(&mut self, job: &Job) -> bool {
        if !job.deadline.expired() {
            return false;
        }
        self.stats.expired += 1;
        self.telemetry.inc_counter("serve_deadline_expired_total");
        let _ = job.reply.send(Response::error(
            503,
            "deadline expired before the request was served",
        ));
        true
    }

    /// Breaker position after this run (tests and drain reporting).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }
}

fn breaker_label(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

/// Renders one predict reply from a (possibly shared) serving report.
/// `generation` is the continual-learning model generation that
/// produced the prediction (0 until a first promotion is installed).
fn render_prediction(
    report: &ServingReport,
    day: u16,
    t: u16,
    area: Option<u16>,
    state: BreakerState,
    generation: u64,
) -> Response {
    let tail = format!(
        "\"degraded\":{},\"breaker\":{},\"generation\":{generation},\"feeds\":{{\"weather\":{},\"traffic\":{}}}",
        report.feeds.degraded(),
        json_string(breaker_label(state)),
        json_string(&report.feeds.weather.to_string()),
        json_string(&report.feeds.traffic.to_string()),
    );
    match area {
        Some(a) => match report.predictions.get(a as usize) {
            Some(p) => Response::json(
                200,
                format!("{{\"day\":{day},\"t\":{t},\"area\":{a},\"gap\":{p},{tail}}}"),
            ),
            None => Response::error(
                404,
                &format!(
                    "area {a} out of range (city has {} areas)",
                    report.predictions.len()
                ),
            ),
        },
        None => {
            let mut preds = String::with_capacity(report.predictions.len() * 8);
            for (i, p) in report.predictions.iter().enumerate() {
                if i > 0 {
                    preds.push(',');
                }
                preds.push_str(&format!("{p}"));
            }
            Response::json(
                200,
                format!("{{\"day\":{day},\"t\":{t},\"gaps\":[{preds}],{tail}}}"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepsd_features::FeedStatus;
    use deepsd_features::IngestStats;

    fn report(preds: Vec<f32>, degraded: bool) -> ServingReport {
        let feeds = if degraded {
            FeedStatus {
                weather: deepsd_features::FeedState::Down,
                traffic: deepsd_features::FeedState::Live,
            }
        } else {
            FeedStatus::all_live()
        };
        ServingReport {
            predictions: preds,
            feeds,
            ingest: IngestStats::default(),
        }
    }

    #[test]
    fn render_full_city_and_single_area() {
        let r = report(vec![1.5, 2.25], false);
        let full = render_prediction(&r, 3, 600, None, BreakerState::Closed, 0);
        assert_eq!(full.status, 200);
        assert!(full.body.contains("\"gaps\":[1.5,2.25]"), "{}", full.body);
        assert!(full.body.contains("\"breaker\":\"closed\""));
        assert!(full.body.contains("\"generation\":0"), "{}", full.body);

        let one = render_prediction(&r, 3, 600, Some(1), BreakerState::Closed, 7);
        assert_eq!(one.status, 200);
        assert!(one.body.contains("\"area\":1"), "{}", one.body);
        assert!(one.body.contains("\"gap\":2.25"), "{}", one.body);
        assert!(one.body.contains("\"generation\":7"), "{}", one.body);
    }

    #[test]
    fn render_area_out_of_range_is_404() {
        let r = report(vec![0.0; 4], false);
        let resp = render_prediction(&r, 0, 0, Some(9), BreakerState::Closed, 0);
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("out of range"), "{}", resp.body);
    }

    #[test]
    fn render_marks_degraded_feeds() {
        let r = report(vec![1.0], true);
        let resp = render_prediction(&r, 0, 0, None, BreakerState::Open, 0);
        assert!(resp.body.contains("\"degraded\":true"), "{}", resp.body);
        assert!(resp.body.contains("\"breaker\":\"open\""), "{}", resp.body);
        assert!(resp.body.contains("\"weather\":\"down\""), "{}", resp.body);
    }
}
