//! Deadline arithmetic — the only module in this crate that reads the
//! wall clock outside a `time_` telemetry observation.
//!
//! Everything else in the daemon is count-driven so the chaos harness
//! stays deterministic; real time is unavoidable exactly twice — "has
//! this request's budget run out?" and "how long did this take?" — and
//! both live here, where the `determinism-wallclock` lint scopes its
//! serve-crate exemption (DESIGN.md §4.6).

use std::time::{Duration, Instant};

/// An absolute point in time a request must be answered by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline {
            at: Instant::now() + Duration::from_millis(ms),
        }
    }

    /// True once the budget has run out.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Budget left (zero once expired; never negative).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Elapsed-time probe feeding `time_`-namespaced histograms.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Seconds since [`Stopwatch::start`], for a `time_…` metric.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_is_unexpired_and_has_budget() {
        let d = Deadline::after_ms(60_000);
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(1));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let d = Deadline::after_ms(0);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_seconds();
        let b = w.elapsed_seconds();
        assert!(a >= 0.0 && b >= a);
    }
}
