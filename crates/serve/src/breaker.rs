//! Count-driven circuit breaker over environment-feed health.
//!
//! Every batched prediction yields a `ServingReport` whose
//! `FeedStatus::degraded()` says whether the features were built from
//! stale or dead feeds. The breaker folds that stream of booleans into
//! a readiness signal for `/readyz`:
//!
//! ```text
//!            trip_threshold consecutive degraded
//!   Closed ────────────────────────────────────────▶ Open
//!     ▲                                               │ first healthy
//!     │ restore_threshold consecutive healthy         ▼
//!     └──────────────────────────────────────────  HalfOpen
//!                 (any degraded ──▶ back to Open)
//! ```
//!
//! Deliberately **count-driven, not time-driven**: the breaker advances
//! only when a prediction is served, so the same request sequence
//! always produces the same state transitions — the chaos harness
//! depends on that. Liveness (`/healthz`) is unaffected; a tripped
//! breaker only tells load balancers to stop routing until the feeds
//! recover.

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Feeds healthy; serving normally.
    Closed,
    /// Too many consecutive degraded predictions; `/readyz` is 503.
    Open,
    /// Seen healthy feeds again; probing before declaring recovery.
    HalfOpen,
}

/// See the module docs for the state machine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    trip_threshold: u32,
    restore_threshold: u32,
    consecutive_degraded: u32,
    consecutive_healthy: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `trip_threshold` consecutive
    /// degraded observations and closing again after
    /// `restore_threshold` consecutive healthy ones (both clamped to at
    /// least 1).
    pub fn new(trip_threshold: u32, restore_threshold: u32) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            trip_threshold: trip_threshold.max(1),
            restore_threshold: restore_threshold.max(1),
            consecutive_degraded: 0,
            consecutive_healthy: 0,
            trips: 0,
        }
    }

    /// Folds one served prediction's feed health into the breaker and
    /// returns the state after the transition.
    pub fn record(&mut self, degraded: bool) -> BreakerState {
        match (self.state, degraded) {
            (BreakerState::Closed, true) => {
                self.consecutive_degraded += 1;
                if self.consecutive_degraded >= self.trip_threshold {
                    self.state = BreakerState::Open;
                    self.trips += 1;
                    self.consecutive_healthy = 0;
                }
            }
            (BreakerState::Closed, false) => {
                self.consecutive_degraded = 0;
            }
            (BreakerState::Open, false) => {
                // First healthy probe: start confirming recovery.
                self.state = BreakerState::HalfOpen;
                self.consecutive_healthy = 1;
                self.maybe_close();
            }
            (BreakerState::Open, true) => {}
            (BreakerState::HalfOpen, false) => {
                self.consecutive_healthy += 1;
                self.maybe_close();
            }
            (BreakerState::HalfOpen, true) => {
                // Recovery was premature.
                self.state = BreakerState::Open;
                self.consecutive_healthy = 0;
            }
        }
        self.state
    }

    fn maybe_close(&mut self) {
        if self.consecutive_healthy >= self.restore_threshold {
            self.state = BreakerState::Closed;
            self.consecutive_degraded = 0;
            self.consecutive_healthy = 0;
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Readiness for `/readyz`: only a fully closed breaker is ready.
    pub fn is_ready(&self) -> bool {
        self.state == BreakerState::Closed
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_degraded() {
        let mut b = CircuitBreaker::new(3, 2);
        assert_eq!(b.record(true), BreakerState::Closed);
        assert_eq!(b.record(true), BreakerState::Closed);
        assert_eq!(b.record(true), BreakerState::Open);
        assert!(!b.is_ready());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn interleaved_healthy_resets_the_count() {
        let mut b = CircuitBreaker::new(3, 1);
        b.record(true);
        b.record(true);
        b.record(false); // reset
        b.record(true);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.record(true), BreakerState::Open);
    }

    #[test]
    fn recovery_goes_through_half_open() {
        let mut b = CircuitBreaker::new(1, 2);
        assert_eq!(b.record(true), BreakerState::Open);
        assert_eq!(b.record(false), BreakerState::HalfOpen);
        assert!(!b.is_ready(), "half-open is not ready yet");
        assert_eq!(b.record(false), BreakerState::Closed);
        assert!(b.is_ready());
    }

    #[test]
    fn degraded_probe_reopens() {
        let mut b = CircuitBreaker::new(1, 3);
        b.record(true);
        b.record(false); // half-open, 1/3
        assert_eq!(b.record(true), BreakerState::Open);
        // And a full recovery still works afterwards.
        b.record(false);
        b.record(false);
        assert_eq!(b.record(false), BreakerState::Closed);
    }

    #[test]
    fn restore_threshold_one_closes_on_first_probe() {
        let mut b = CircuitBreaker::new(2, 1);
        b.record(true);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.record(false), BreakerState::Closed);
    }

    #[test]
    fn same_sequence_same_transitions() {
        let seq = [true, true, false, true, true, true, false, false, true];
        let run = |mut b: CircuitBreaker| -> Vec<BreakerState> {
            seq.iter().map(|&d| b.record(d)).collect()
        };
        assert_eq!(
            run(CircuitBreaker::new(3, 2)),
            run(CircuitBreaker::new(3, 2))
        );
    }
}
