//! # deepsd-serve — fault-contained serving daemon
//!
//! The paper's deployment target is Didi's dispatch system; this crate
//! is the missing process boundary around [`deepsd::OnlinePredictor`]:
//! a zero-dependency HTTP/1.1 daemon over `std::net` built to contain
//! faults rather than propagate them (DESIGN.md §4.6).
//!
//! Containment layers, outermost first:
//!
//! * **Socket timeouts** — every accepted connection gets read/write
//!   timeouts, so a slow-loris client stalls one handler thread for a
//!   bounded time, never the daemon.
//! * **Admission control** — predict/observe work enters a bounded
//!   queue; when it is full the request is shed immediately with
//!   `429 Too Many Requests` + `Retry-After`, and both admissions and
//!   sheds are counted in telemetry.
//! * **Deadlines** — each admitted request carries a deadline. Work
//!   that expires in the queue is answered `503` without touching the
//!   model; deadline arithmetic is confined to [`deadline`].
//! * **Micro-batching** — the single engine thread that owns the
//!   predictor coalesces queued predict requests for the same
//!   `(day, t)` slot into one `predict_all_report` call, which scores
//!   all areas through the existing `predict_chunks_masked` /
//!   `serve_tape` path.
//! * **Circuit breaker** — consecutive degraded feed reports trip a
//!   count-driven breaker: `/readyz` flips to 503 (load balancers stop
//!   routing) while `/healthz` stays 200 (the process is alive), and
//!   consecutive healthy reports close it again via half-open probes.
//! * **Graceful drain** — shutdown raises a flag and wakes the
//!   listener; the acceptor stops taking connections, the engine serves
//!   every already-admitted job, and in-flight handlers finish before
//!   [`Server::run`] returns.
//!
//! Everything is deterministic except wall-clock reads, which exist
//! only in [`deadline`] and behind `time_`-namespaced telemetry — the
//! breaker, queue order and batch grouping are all count-driven, which
//! is what makes the chaos harness in `deepsd-bench` reproducible.

#![warn(missing_docs)]
// Serving-critical crate: production code must not unwrap/expect (test
// code is exempt via clippy.toml's allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod breaker;
pub mod deadline;
pub mod engine;
pub mod http;
pub mod queue;
pub mod server;

pub use breaker::{BreakerState, CircuitBreaker};
pub use deadline::Deadline;
pub use engine::{ContinualHooks, EngineStats};
pub use http::{Request, Response};
pub use queue::{Job, JobQueue, PushError};
pub use server::{ServeError, Server, ServerHandle};

/// Tunables for one daemon instance. The defaults suit the smoke-scale
/// chaos drills; production deployments mostly raise `queue_capacity`
/// and `deadline_ms`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Bounded request-queue capacity; pushes beyond it are shed with
    /// `429` + `Retry-After`.
    pub queue_capacity: usize,
    /// Per-request deadline. A request that cannot be answered within
    /// this budget gets `503 Service Unavailable`.
    pub deadline_ms: u64,
    /// Socket read timeout per connection (slow-loris bound).
    pub read_timeout_ms: u64,
    /// Socket write timeout per connection.
    pub write_timeout_ms: u64,
    /// Maximum jobs the engine dequeues per batching pass.
    pub max_batch: usize,
    /// Consecutive degraded predictions that trip the circuit breaker.
    pub breaker_trip: u32,
    /// Consecutive healthy predictions that close it again.
    pub breaker_restore: u32,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 64,
            deadline_ms: 500,
            read_timeout_ms: 1_000,
            write_timeout_ms: 1_000,
            max_batch: 64,
            breaker_trip: 3,
            breaker_restore: 2,
            retry_after_secs: 1,
            max_body_bytes: 1 << 20,
        }
    }
}
