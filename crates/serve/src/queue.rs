//! The bounded admission queue between connection handlers and the
//! engine thread.
//!
//! Admission control happens at `push`: a full queue rejects the job
//! immediately ([`PushError::Full`]) so the handler can shed with
//! `429 Too Many Requests` + `Retry-After` instead of letting latency
//! grow without bound. The engine drains jobs in FIFO order, up to a
//! batch at a time; a `Condvar` keeps the engine asleep while idle and
//! lets shutdown wake it promptly.

use crate::deadline::{Deadline, Stopwatch};
use crate::http::Response;
use deepsd_simdata::Order;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What an admitted request asks of the engine.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Score `(day, t)` — one area or the whole city.
    Predict {
        /// Day of the prediction slot.
        day: u16,
        /// Minute-of-day of the prediction slot.
        t: u16,
        /// Restrict the response to one area (`None` = all areas).
        area: Option<u16>,
    },
    /// Ingest a batch of streamed orders.
    Observe {
        /// The decoded orders, in arrival order.
        orders: Vec<Order>,
    },
}

/// One admitted unit of work.
#[derive(Debug)]
pub struct Job {
    /// The request payload.
    pub kind: JobKind,
    /// When the client stops waiting.
    pub deadline: Deadline,
    /// Where the engine sends the response (a dead receiver is fine —
    /// the handler may have timed out and answered 503 on its own).
    pub reply: Sender<Response>,
    /// Started at admission; feeds `time_serve_queue_wait_seconds`.
    pub queued: Stopwatch,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity: shed the request.
    Full,
}

/// Bounded multi-producer queue drained by the single engine thread.
#[derive(Debug)]
pub struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    cond: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            jobs: Mutex::new(VecDeque::with_capacity(capacity)),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn locked(&self) -> MutexGuard<'_, VecDeque<Job>> {
        // A poisoned lock only means another thread panicked while
        // holding it; the queue itself is still structurally sound.
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// True when no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.locked().is_empty()
    }

    /// Admits a job, or refuses immediately when at capacity.
    pub fn push(&self, job: Job) -> Result<(), PushError> {
        let mut jobs = self.locked();
        if jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        jobs.push_back(job);
        drop(jobs);
        self.cond.notify_all();
        Ok(())
    }

    /// Removes up to `max` jobs in FIFO order, waiting up to `timeout`
    /// when the queue is empty. Returns an empty vec on timeout or
    /// spurious wake — callers loop.
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<Job> {
        let mut jobs = self.locked();
        if jobs.is_empty() {
            let (guard, _) = self
                .cond
                .wait_timeout(jobs, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            jobs = guard;
        }
        let take = jobs.len().min(max.max(1));
        jobs.drain(..take).collect()
    }

    /// Wakes a sleeping engine (used by shutdown so drain starts
    /// immediately instead of after the poll timeout).
    pub fn wake(&self) {
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn job(day: u16) -> Job {
        let (tx, _rx) = mpsc::channel();
        Job {
            kind: JobKind::Predict {
                day,
                t: 600,
                area: None,
            },
            deadline: Deadline::after_ms(60_000),
            reply: tx,
            queued: Stopwatch::start(),
        }
    }

    #[test]
    fn push_sheds_at_capacity() {
        let q = JobQueue::new(2);
        assert!(q.push(job(0)).is_ok());
        assert!(q.push(job(1)).is_ok());
        assert_eq!(q.push(job(2)), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_is_fifo_and_bounded() {
        let q = JobQueue::new(8);
        for day in 0..5 {
            q.push(job(day)).unwrap();
        }
        let batch = q.pop_batch(3, Duration::from_millis(1));
        let days: Vec<u16> = batch
            .iter()
            .map(|j| match j.kind {
                JobKind::Predict { day, .. } => day,
                _ => u16::MAX,
            })
            .collect();
        assert_eq!(days, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_times_out_empty() {
        let q = JobQueue::new(2);
        let batch = q.pop_batch(4, Duration::from_millis(5));
        assert!(batch.is_empty());
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = JobQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(job(0)).is_ok());
        assert_eq!(q.push(job(1)), Err(PushError::Full));
    }
}
