//! The daemon itself: listener, connection handlers, routing, and the
//! drain protocol that ties them to the engine.
//!
//! Thread model: `Server::run` keeps the caller's thread for the
//! engine (so the `&mut OnlinePredictor` never crosses a thread
//! unprotected), spawns one acceptor thread, and one short-lived
//! handler thread per connection. Handlers never touch the model —
//! they parse, validate, admit into the bounded queue, and wait on a
//! per-request reply channel with the request's own deadline.
//!
//! Endpoints (all `Connection: close`):
//!
//! | route             | meaning                                      |
//! |-------------------|----------------------------------------------|
//! | `GET /predict`    | score `day`/`t` (optional `area`)            |
//! | `POST /observe`   | ingest `{"orders":[[day,ts,pid,s,d,v],…]}`   |
//! | `GET /metrics`    | Prometheus text exposition                   |
//! | `GET /healthz`    | liveness — 200 while the process runs        |
//! | `GET /readyz`     | readiness — 503 when the breaker is open     |
//! | `POST /shutdown`  | begin graceful drain                         |

use crate::breaker::CircuitBreaker;
use crate::deadline::{Deadline, Stopwatch};
use crate::engine::{ContinualHooks, Engine, EngineStats};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::queue::{Job, JobKind, JobQueue, PushError};
use crate::ServeConfig;
use deepsd::continual::Handoff;
use deepsd::model::Predictor;
use deepsd::serving::OnlinePredictor;
use deepsd::telemetry::Telemetry;
use deepsd_features::ItemSource;
use deepsd_simdata::{Order, MINUTES_PER_DAY};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Extra time a handler waits beyond the request deadline for the
/// engine's reply (covers the engine's own 503 arriving just-in-time).
const REPLY_GRACE: Duration = Duration::from_millis(100);

/// How long [`Server::run`] waits for in-flight handlers after drain.
const DRAIN_WAIT: Duration = Duration::from_secs(5);

/// Why the daemon could not start or stop cleanly.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The configured address.
        addr: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
    /// The listener socket failed after binding.
    Listener(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Listener(e) => write!(f, "listener failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Dataset bounds handlers validate against before admitting work.
#[derive(Debug, Clone, Copy)]
struct Limits {
    n_days: u16,
    n_areas: usize,
}

/// State shared by the acceptor, handlers, engine, and handles.
#[derive(Debug)]
struct Shared {
    queue: JobQueue,
    shutdown: AtomicBool,
    ready: AtomicBool,
    active: AtomicUsize,
    telemetry: Telemetry,
    addr: SocketAddr,
    /// Continual-learning model generation currently serving (0 until a
    /// promotion is installed). Written only by the engine, surfaced on
    /// `/readyz`.
    generation: Arc<AtomicU64>,
}

impl Shared {
    /// Raises the drain flag and wakes both the engine (condvar) and
    /// the acceptor (self-connect unblocks `accept`).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.wake();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// A clonable remote control for a running daemon.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful drain: stop accepting, serve what's queued,
    /// then let [`Server::run`] return.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Current `/readyz` verdict.
    pub fn is_ready(&self) -> bool {
        self.shared.ready.load(Ordering::SeqCst) && !self.shared.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound (but not yet serving) daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    config: ServeConfig,
    continual: Option<(mpsc::Sender<Vec<Order>>, Handoff)>,
}

impl Server {
    /// Binds the configured address. The daemon does not accept
    /// connections until [`Server::run`].
    pub fn bind(config: ServeConfig, telemetry: Telemetry) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Bind {
            addr: config.addr.clone(),
            source,
        })?;
        let addr = listener.local_addr().map_err(ServeError::Listener)?;
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            ready: AtomicBool::new(true),
            active: AtomicUsize::new(0),
            telemetry,
            addr,
            generation: Arc::new(AtomicU64::new(0)),
        });
        Ok(Server {
            listener,
            shared,
            config,
            continual: None,
        })
    }

    /// Attaches continual learning: the engine forwards every observed
    /// order batch through `orders` (for the shadow trainer) and
    /// installs snapshots promoted through `handoff` between
    /// micro-batches.
    pub fn set_continual(&mut self, orders: mpsc::Sender<Vec<Order>>, handoff: Handoff) {
        self.continual = Some((orders, handoff));
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control usable from other threads (shutdown, probes).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a graceful shutdown completes: runs the engine on
    /// the calling thread (which owns the predictor) and the acceptor
    /// on a spawned thread. Returns the engine's lifetime stats once
    /// the queue is drained and in-flight handlers have finished.
    pub fn run<P: Predictor + Sync, X: ItemSource>(
        self,
        predictor: &mut OnlinePredictor<P, X>,
    ) -> Result<EngineStats, ServeError> {
        let limits = Limits {
            n_days: predictor.extractor().n_days(),
            n_areas: predictor.extractor().n_areas(),
        };
        let shared = Arc::clone(&self.shared);
        let config = self.config.clone();
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("deepsd-serve-acceptor".to_string())
            .spawn(move || accept_loop(listener, shared, config, limits))
            .map_err(ServeError::Listener)?;

        let breaker = CircuitBreaker::new(self.config.breaker_trip, self.config.breaker_restore);
        let mut engine = Engine::new(
            self.shared.telemetry.clone(),
            breaker,
            self.config.max_batch,
        );
        if let Some((orders, handoff)) = self.continual.clone() {
            engine.set_continual(ContinualHooks {
                orders,
                handoff,
                generation: Arc::clone(&self.shared.generation),
            });
        }
        let stats = engine.run(
            predictor,
            &self.shared.queue,
            &self.shared.shutdown,
            &self.shared.ready,
        );

        // Drain: the engine only returns once shutdown was requested
        // and the queue is empty; now wait for in-flight handlers.
        let waited = Stopwatch::start();
        while self.shared.active.load(Ordering::SeqCst) > 0
            && waited.elapsed_seconds() < DRAIN_WAIT.as_secs_f64()
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        // A second wakeup in case the acceptor was already blocked in
        // `accept` when the first self-connect was consumed.
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_millis(200));
        let _ = acceptor.join();
        Ok(stats)
    }
}

/// Accepts connections until drain, spawning one handler thread each.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>, config: ServeConfig, limits: Limits) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        shared.telemetry.inc_counter("serve_connections_total");
        shared.active.fetch_add(1, Ordering::SeqCst);
        let worker = Arc::clone(&shared);
        let config = config.clone();
        let spawned = std::thread::Builder::new()
            .name("deepsd-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &worker, &config, limits);
                worker.active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Could not spawn a handler; undo the bookkeeping. The
            // client sees a reset, which its retry policy absorbs.
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Reads one request, routes it, writes one response.
fn handle_connection(mut stream: TcpStream, shared: &Shared, config: &ServeConfig, limits: Limits) {
    let timer = Stopwatch::start();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(config.read_timeout_ms.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(config.write_timeout_ms.max(1))));

    let resp = match read_request(&mut stream, config.max_body_bytes) {
        Ok(req) => route(&req, shared, config, limits),
        Err(HttpError::Timeout) => {
            shared.telemetry.inc_counter("serve_read_timeouts_total");
            Response::error(408, "timed out reading the request")
        }
        Err(HttpError::TooLarge(n)) => {
            shared.telemetry.inc_counter("serve_malformed_total");
            Response::error(413, &format!("request too large ({n} bytes)"))
        }
        Err(HttpError::Malformed(m)) => {
            shared.telemetry.inc_counter("serve_malformed_total");
            Response::error(400, &m)
        }
        Err(HttpError::Io(_)) => {
            // Connection died before a request arrived (includes the
            // shutdown self-connect); nothing to answer.
            shared.telemetry.inc_counter("serve_io_errors_total");
            return;
        }
    };

    shared
        .telemetry
        .observe("time_serve_request_seconds", timer.elapsed_seconds());
    shared
        .telemetry
        .inc_counter(&format!("serve_responses_{}xx_total", resp.status / 100));
    if write_response(&mut stream, &resp).is_err() {
        shared.telemetry.inc_counter("serve_write_errors_total");
    }
}

fn route(req: &Request, shared: &Shared, config: &ServeConfig, limits: Limits) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if shared.shutdown.load(Ordering::SeqCst) {
                Response::error(503, "draining")
            } else if shared.ready.load(Ordering::SeqCst) {
                let generation = shared.generation.load(Ordering::SeqCst);
                Response::text(200, &format!("ready generation={generation}\n"))
            } else {
                Response::error(503, "circuit breaker open: feeds degraded")
            }
        }
        ("GET", "/metrics") => {
            // Refresh the process peak-RSS gauge at scrape time so the
            // exposition reflects per-area state growth; `time_`-
            // namespaced, so determinism snapshots never see it.
            shared
                .telemetry
                .set_gauge("time_peak_rss_mb", deepsd::telemetry::peak_rss_mb());
            Response::text(200, &shared.telemetry.to_prometheus())
        }
        ("POST", "/shutdown") => {
            shared.begin_shutdown();
            Response::json(200, "{\"draining\":true}".to_string())
        }
        ("GET", "/predict") => predict(req, shared, config, limits),
        ("POST", "/observe") => observe(req, shared, config),
        ("POST", "/predict") | ("GET" | "PUT" | "DELETE", "/observe" | "/shutdown") => {
            Response::error(405, &format!("method {} not allowed here", req.method))
        }
        (_, path) => Response::error(404, &format!("no route for {path}")),
    }
}

/// Parses a required integer query parameter, or a ready-made `400`.
fn required_param<T: std::str::FromStr>(req: &Request, key: &str) -> Result<T, Response> {
    match req.param(key) {
        None => Err(Response::error(
            400,
            &format!("missing query parameter '{key}'"),
        )),
        Some(raw) => raw
            .parse::<T>()
            .map_err(|_| Response::error(400, &format!("parameter '{key}'='{raw}' is not valid"))),
    }
}

fn predict(req: &Request, shared: &Shared, config: &ServeConfig, limits: Limits) -> Response {
    let day: u16 = match required_param(req, "day") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let t: u16 = match required_param(req, "t") {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if day >= limits.n_days {
        return Response::error(
            400,
            &format!(
                "day {day} out of range (dataset has {} days)",
                limits.n_days
            ),
        );
    }
    if u32::from(t) >= MINUTES_PER_DAY {
        return Response::error(400, &format!("t {t} out of range (0..{MINUTES_PER_DAY})"));
    }
    let area: Option<u16> = match req.param("area") {
        None => None,
        Some(raw) => match raw.parse::<u16>() {
            Err(_) => {
                return Response::error(400, &format!("parameter 'area'='{raw}' is not valid"))
            }
            Ok(a) if usize::from(a) >= limits.n_areas => {
                return Response::error(
                    404,
                    &format!("area {a} out of range (city has {} areas)", limits.n_areas),
                )
            }
            Ok(a) => Some(a),
        },
    };
    submit(shared, config, JobKind::Predict { day, t, area })
}

fn observe(req: &Request, shared: &Shared, config: &ServeConfig) -> Response {
    let orders = match parse_orders(&req.body) {
        Ok(orders) => orders,
        Err(msg) => {
            shared.telemetry.inc_counter("serve_malformed_total");
            return Response::error(400, &msg);
        }
    };
    if orders.is_empty() {
        return Response::json(
            200,
            "{\"attempted\":0,\"applied\":0,\"failed\":0}".to_string(),
        );
    }
    submit(shared, config, JobKind::Observe { orders })
}

/// Admission: shed (`429`) when the queue is full, otherwise enqueue
/// and wait for the engine's reply within the request deadline.
fn submit(shared: &Shared, config: &ServeConfig, kind: JobKind) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining");
    }
    let deadline = Deadline::after_ms(config.deadline_ms);
    let (tx, rx) = mpsc::channel();
    let job = Job {
        kind,
        deadline,
        reply: tx,
        queued: Stopwatch::start(),
    };
    match shared.queue.push(job) {
        Err(PushError::Full) => {
            shared.telemetry.inc_counter("serve_shed_total");
            let mut resp = Response::error(429, "request queue full; shed to protect latency");
            resp.retry_after = Some(config.retry_after_secs);
            resp
        }
        Ok(()) => {
            shared.telemetry.inc_counter("serve_admitted_total");
            match rx.recv_timeout(deadline.remaining() + REPLY_GRACE) {
                Ok(resp) => resp,
                Err(_) => {
                    shared.telemetry.inc_counter("serve_reply_timeouts_total");
                    Response::error(503, "deadline expired waiting for the engine")
                }
            }
        }
    }
}

/// Decodes the `/observe` body: `{"orders":[[day,ts,pid,start,dest,valid],…]}`.
///
/// Hand-rolled (the crate takes no serde dependency) but strict:
/// every malformed row is a typed message naming the offending index.
fn parse_orders(body: &[u8]) -> Result<Vec<Order>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    let key = text
        .find("\"orders\"")
        .ok_or_else(|| "missing \"orders\" key".to_string())?;
    let after = text.get(key..).unwrap_or_default();
    let open = after
        .find('[')
        .ok_or_else(|| "missing orders array".to_string())?;

    let mut rows: Vec<String> = Vec::new();
    let mut row = String::new();
    let mut depth = 0usize;
    let mut closed = false;
    for c in after.get(open..).unwrap_or_default().chars() {
        match c {
            '[' => {
                depth += 1;
                if depth == 2 {
                    row.clear();
                } else if depth > 2 {
                    return Err("orders rows must be flat arrays".to_string());
                }
            }
            ']' => {
                if depth == 2 {
                    rows.push(std::mem::take(&mut row));
                }
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    closed = true;
                    break;
                }
            }
            _ if depth == 2 => row.push(c),
            _ => {}
        }
    }
    if !closed {
        return Err("unterminated orders array".to_string());
    }
    rows.iter()
        .enumerate()
        .map(|(i, r)| parse_order_row(r).map_err(|e| format!("order[{i}]: {e}")))
        .collect()
}

fn parse_order_row(row: &str) -> Result<Order, String> {
    let fields: Vec<&str> = row.split(',').map(str::trim).collect();
    if fields.len() != 6 {
        return Err(format!(
            "expected 6 fields [day,ts,pid,start,dest,valid], got {}",
            fields.len()
        ));
    }
    fn field<T: std::str::FromStr>(fields: &[&str], idx: usize, name: &str) -> Result<T, String> {
        fields
            .get(idx)
            .copied()
            .unwrap_or_default()
            .parse::<T>()
            .map_err(|_| format!("field '{name}' is malformed"))
    }
    let valid = match fields.get(5).copied().unwrap_or_default() {
        "true" | "1" => true,
        "false" | "0" => false,
        other => return Err(format!("field 'valid' must be a bool, got '{other}'")),
    };
    Ok(Order {
        day: field(&fields, 0, "day")?,
        ts: field(&fields, 1, "ts")?,
        pid: field(&fields, 2, "pid")?,
        loc_start: field(&fields, 3, "start")?,
        loc_dest: field(&fields, 4, "dest")?,
        valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_orders_round_trips_well_formed_bodies() {
        let body = br#"{"orders":[[3,600,7,0,1,true],[3, 601, 8, 1, 0, false]]}"#;
        let orders = parse_orders(body).unwrap();
        assert_eq!(orders.len(), 2);
        assert_eq!(orders[0].day, 3);
        assert_eq!(orders[0].ts, 600);
        assert_eq!(orders[0].pid, 7);
        assert!(orders[0].valid);
        assert_eq!(orders[1].loc_start, 1);
        assert!(!orders[1].valid);
    }

    #[test]
    fn parse_orders_accepts_numeric_bools_and_empty() {
        let orders = parse_orders(br#"{"orders":[[0,0,1,0,0,1]]}"#).unwrap();
        assert!(orders[0].valid);
        assert!(parse_orders(br#"{"orders":[]}"#).unwrap().is_empty());
    }

    #[test]
    fn parse_orders_rejects_malformed_bodies() {
        for (body, needle) in [
            (&b"not json"[..], "missing \"orders\""),
            (b"{\"orders\":", "missing orders array"),
            (b"{\"orders\":[[1,2,3", "unterminated"),
            (b"{\"orders\":[[1,2,3,4,5]]}", "expected 6 fields"),
            (b"{\"orders\":[[1,2,3,4,5,maybe]]}", "must be a bool"),
            (b"{\"orders\":[[x,2,3,4,5,true]]}", "'day' is malformed"),
            (b"{\"orders\":[[[1],2,3,4,5,true]]}", "flat arrays"),
            (b"\xff\xfe", "not utf-8"),
        ] {
            let err = parse_orders(body).unwrap_err();
            assert!(err.contains(needle), "body {body:?}: got '{err}'");
        }
    }

    #[test]
    fn parse_orders_names_the_bad_row() {
        let err = parse_orders(br#"{"orders":[[0,0,1,0,0,1],[9,9,bad,0,0,1]]}"#).unwrap_err();
        assert!(err.starts_with("order[1]:"), "{err}");
    }
}
