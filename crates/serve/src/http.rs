//! Minimal HTTP/1.1 over `std::net` — just enough protocol for the
//! daemon's endpoints, written defensively: every malformed input is a
//! typed [`HttpError`], never a panic, and header/body sizes are capped
//! so a hostile client cannot balloon memory.
//!
//! Connections are single-request (`Connection: close`); keep-alive is
//! deliberately out of scope — it buys little on a loopback deployment
//! and complicates draining.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/predict`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or closed mid-request.
    Io(std::io::Error),
    /// The client exceeded a read timeout (slow-loris containment).
    Timeout,
    /// The bytes were not a well-formed request.
    Malformed(String),
    /// Head or body exceeded its size cap.
    TooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http io: {e}"),
            HttpError::Timeout => write!(f, "read timed out"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(n) => write!(f, "request too large ({n} bytes)"),
        }
    }
}

impl std::error::Error for HttpError {}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads and parses one request from the stream, honouring the
/// stream's configured read timeout and the `max_body` cap.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(buf.len()));
        }
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };

    let head = std::str::from_utf8(buf.get(..head_end).unwrap_or_default())
        .map_err(|e| HttpError::Malformed(format!("head not utf-8: {e}")))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version '{version}'")));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line '{line}'")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length '{value}'")))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge(content_length));
    }

    // Body: whatever arrived with the head, then read the remainder.
    let mut body: Vec<u8> = buf.get(head_end + 4..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::Malformed(format!(
                "connection closed mid-body ({}/{content_length} bytes)",
                body.len()
            )));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or_default());
        if body.len() > max_body {
            return Err(HttpError::TooLarge(body.len()));
        }
    }
    body.truncate(content_length);

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Position of the `\r\n\r\n` separator, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect()
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type of `body`.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` advice (set on shed responses).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.to_string(),
            retry_after: None,
        }
    }

    /// A JSON error envelope: `{"error":"…"}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Serialises a string as a JSON literal (quotes + escapes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a complete `Connection: close` response.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> Result<(), HttpError> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("retry-after: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).map_err(io_error)?;
    stream.write_all(resp.body.as_bytes()).map_err(io_error)?;
    stream.flush().map_err(io_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_handles_edges() {
        let q = parse_query("day=10&t=600&flag&x=");
        assert_eq!(q.len(), 4);
        assert_eq!(q[0], ("day".into(), "10".into()));
        assert_eq!(q[2], ("flag".into(), String::new()));
        assert_eq!(parse_query(""), Vec::new());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }

    #[test]
    fn reasons_cover_used_statuses() {
        for s in [200u16, 202, 400, 404, 405, 408, 413, 429, 500, 503] {
            assert_ne!(Response::text(s, "").reason(), "Response", "status {s}");
        }
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
