//! End-to-end daemon tests: a real `DeepSD` model behind the HTTP
//! surface, driven by raw `TcpStream` clients.
//!
//! The centrepiece is the seeded degraded-feed drill: a weather
//! blackout is scheduled mid-stream, predictions served inside the
//! window trip the circuit breaker (`/readyz` flips to 503 while
//! `/healthz` stays 200), and predictions after the window close it
//! again through the half-open probe — deterministically, because the
//! breaker is count-driven.

use deepsd::telemetry::Telemetry;
use deepsd::{DeepSD, ModelConfig, OnlinePredictor};
use deepsd_features::{FeatureConfig, FeatureExtractor, FeedHealth, FeedKind};
use deepsd_serve::{ServeConfig, Server};
use deepsd_simdata::{SimConfig, SimDataset};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const DAY: u16 = 10;

fn setup(seed: u64) -> (SimDataset, FeatureConfig, DeepSD) {
    let ds = SimDataset::generate(&SimConfig::smoke(seed));
    let fcfg = FeatureConfig {
        window_l: 10,
        history_window: 3,
        ..FeatureConfig::default()
    };
    let mut mcfg = ModelConfig::advanced(ds.n_areas());
    mcfg.window_l = fcfg.window_l;
    (ds, fcfg, DeepSD::new(mcfg))
}

/// Sends raw bytes, reads until the server closes, returns
/// `(status, head, body)`.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw).expect("write request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8_lossy(&buf).to_string();
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes(),
    );
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _, resp) = raw_request(addr, raw.as_bytes());
    (status, resp)
}

/// Sends shutdown even when an assert panics mid-scope, so the engine
/// thread exits and `thread::scope` can join instead of deadlocking.
struct ShutdownGuard(deepsd_serve::ServerHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

#[test]
fn blackout_trips_breaker_and_recovery_closes_it() {
    let (ds, fcfg, model) = setup(311);
    let mut fx = FeatureExtractor::new(&ds, fcfg);
    // Seeded mid-stream blackout: weather dies for [540, 660) on DAY.
    let mut health = FeedHealth::default();
    health.add_day_outage(FeedKind::Weather, DAY, 540, 660);
    fx.set_feed_health(health);
    let mut predictor = OnlinePredictor::new(model, fx);

    let config = ServeConfig {
        breaker_trip: 3,
        breaker_restore: 2,
        deadline_ms: 5_000,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Telemetry::new()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    std::thread::scope(|scope| {
        let runner = scope.spawn(move || server.run(&mut predictor));
        let _guard = ShutdownGuard(handle.clone());

        // Alive and ready before any traffic.
        assert_eq!(get(addr, "/healthz").0, 200);
        assert_eq!(get(addr, "/readyz").0, 200);

        // Three degraded predictions inside the blackout trip the breaker.
        for i in 0..3 {
            let (status, body) = get(addr, &format!("/predict?day={DAY}&t=600"));
            assert_eq!(status, 200, "degraded predictions still serve: {body}");
            assert!(body.contains("\"degraded\":true"), "probe {i}: {body}");
        }
        assert_eq!(get(addr, "/readyz").0, 503, "breaker open after 3 degraded");
        assert_eq!(
            get(addr, "/healthz").0,
            200,
            "liveness unaffected by breaker"
        );

        // Streamed orders still ingest while unready.
        let orders = format!("{{\"orders\":[[{DAY},700,1,0,1,true],[{DAY},701,2,1,0,false]]}}");
        let (status, body) = post(addr, "/observe", &orders);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"attempted\":2"), "{body}");

        // Two healthy predictions after the window close it (half-open
        // probe on the first, fully closed on the second).
        let (status, body) = get(addr, &format!("/predict?day={DAY}&t=900"));
        assert_eq!(status, 200);
        assert!(body.contains("\"degraded\":false"), "{body}");
        assert!(body.contains("\"breaker\":\"half-open\""), "{body}");
        assert_eq!(get(addr, "/readyz").0, 503, "half-open is not ready yet");
        let (_, body) = get(addr, &format!("/predict?day={DAY}&t=901"));
        assert!(body.contains("\"breaker\":\"closed\""), "{body}");
        assert_eq!(get(addr, "/readyz").0, 200, "recovered");

        // Telemetry recorded exactly one trip.
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            metrics.contains("serve_breaker_trips_total 1"),
            "metrics: {metrics}"
        );
        assert!(metrics.contains("serve_admitted_total"), "{metrics}");

        // Routing edges.
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(post(addr, "/predict?day=0&t=0", "").0, 405);
        assert_eq!(get(addr, "/predict?day=9999&t=0").0, 400);
        assert_eq!(get(addr, "/predict?day=0&t=9999").0, 400);
        assert_eq!(get(addr, "/predict?t=0").0, 400);
        assert_eq!(
            get(addr, &format!("/predict?day={DAY}&t=901&area=9999")).0,
            404
        );

        // Graceful drain via the HTTP surface.
        let (status, body) = post(addr, "/shutdown", "");
        assert_eq!(status, 200);
        assert!(body.contains("draining"), "{body}");

        let stats = runner.join().expect("engine thread").expect("run");
        assert!(stats.predict_calls >= 5, "stats: {stats:?}");
        assert_eq!(stats.observes, 1, "stats: {stats:?}");
        assert_eq!(stats.expired, 0, "nothing expired: {stats:?}");
    });
    assert!(!handle.is_ready(), "a drained daemon is not ready");
}

#[test]
fn saturating_a_tiny_queue_sheds_with_retry_after() {
    let (ds, fcfg, model) = setup(313);
    let fx = FeatureExtractor::new(&ds, fcfg);
    let mut predictor = OnlinePredictor::new(model, fx);

    let config = ServeConfig {
        queue_capacity: 1,
        max_batch: 1,
        deadline_ms: 5_000,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Telemetry::new()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    std::thread::scope(|scope| {
        let runner = scope.spawn(move || server.run(&mut predictor));
        let _guard = ShutdownGuard(handle.clone());
        assert_eq!(get(addr, "/healthz").0, 200, "daemon is up");

        // A synchronized burst against a capacity-1 queue: some must shed.
        let barrier = std::sync::Barrier::new(32);
        let statuses: Vec<(u16, String)> = std::thread::scope(|burst| {
            let clients: Vec<_> = (0..32)
                .map(|_| {
                    burst.spawn(|| {
                        barrier.wait();
                        let (status, head, _) = raw_request(
                            addr,
                            format!("GET /predict?day={DAY}&t=600 HTTP/1.1\r\nhost: t\r\n\r\n")
                                .as_bytes(),
                        );
                        (status, head)
                    })
                })
                .collect();
            clients
                .into_iter()
                .map(|c| c.join().expect("client"))
                .collect()
        });

        let shed = statuses.iter().filter(|(s, _)| *s == 429).count();
        let ok = statuses.iter().filter(|(s, _)| *s == 200).count();
        for (status, head) in &statuses {
            assert!(
                matches!(status, 200 | 429 | 503),
                "unexpected status {status}: {head}"
            );
            if *status == 429 {
                assert!(
                    head.to_ascii_lowercase().contains("retry-after:"),
                    "shed response advertises Retry-After: {head}"
                );
            }
        }
        assert!(ok >= 1, "at least one request served: {statuses:?}");
        assert!(
            shed >= 1,
            "burst of 32 over capacity 1 must shed: {statuses:?}"
        );

        let (_, metrics) = get(addr, "/metrics");
        let counted: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix("deepsd_serve_shed_total "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        assert!(
            counted as usize >= shed,
            "metrics shed {counted} < observed {shed}"
        );

        handle.shutdown();
        runner.join().expect("engine thread").expect("run");
    });
}

#[test]
fn slow_and_malformed_clients_are_contained() {
    let (ds, fcfg, model) = setup(317);
    let fx = FeatureExtractor::new(&ds, fcfg);
    let mut predictor = OnlinePredictor::new(model, fx);

    let config = ServeConfig {
        read_timeout_ms: 200,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, Telemetry::new()).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();

    std::thread::scope(|scope| {
        let runner = scope.spawn(move || server.run(&mut predictor));
        let _guard = ShutdownGuard(handle.clone());
        assert_eq!(get(addr, "/healthz").0, 200, "daemon is up");

        // Slow-loris: a half-written head is answered 408 after the
        // read timeout instead of pinning the handler forever.
        let mut loris = TcpStream::connect(addr).expect("connect");
        loris.write_all(b"GET /pre").expect("partial write");
        let mut buf = Vec::new();
        loris.read_to_end(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "loris got: {text}");

        // Garbage request line.
        let (status, _, _) = raw_request(addr, b"BLAH\r\n\r\n");
        assert_eq!(status, 400);

        // Truncated body: content-length promises more than arrives.
        let mut trunc = TcpStream::connect(addr).expect("connect");
        trunc
            .write_all(b"POST /observe HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"orders\"")
            .expect("write");
        trunc
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut buf = Vec::new();
        trunc.read_to_end(&mut buf).expect("read");
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "truncated got: {text}");

        // Malformed observe payloads are 400, named by row.
        let (status, body) = post(addr, "/observe", "{\"orders\":[[1,2,3]]}");
        assert_eq!(status, 400);
        assert!(body.contains("expected 6 fields"), "{body}");

        // The daemon is still fully functional afterwards.
        let (status, body) = get(addr, &format!("/predict?day={DAY}&t=600&area=0"));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"area\":0"), "{body}");

        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("serve_read_timeouts_total 1"), "{metrics}");
        assert!(metrics.contains("serve_malformed_total"), "{metrics}");

        handle.shutdown();
        let stats = runner.join().expect("engine thread").expect("run");
        assert!(stats.served >= 1, "{stats:?}");
    });
}
