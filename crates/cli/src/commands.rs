//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use deepsd::trainer::{evaluate_model, train};
use deepsd::{
    load_checkpoint, save_checkpoint, DeepSD, EnvBlocks, ModelConfig, OnlinePredictor, Telemetry,
    TrainOptions, Variant,
};
use deepsd_baselines::EmpiricalAverage;
use deepsd_features::{
    test_keys, train_keys, FeatureConfig, FeatureExtractor, FeedHealth, FeedKind, IngestPolicy,
    ItemKey, ItemSource, StreamingExtractor,
};
use deepsd_serve::{ServeConfig, Server};
use deepsd_simdata::{
    decode_dataset, encode_dataset, AreaSource, ChunkReader, ChunkWriter, CityConfig, FaultPlan,
    Order, OrderGenConfig, SimConfig, SimDataset, StreamGenerator,
};
use std::fs;
use std::io::{Read, Seek};

/// Top-level error type for commands.
pub type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Data-dependent validation failure at run time (the flags were well
/// formed; the data disagreed). Unlike [`ArgError`] it exits 1 without
/// the usage text.
#[derive(Debug)]
pub struct RunError(pub String);

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RunError {}

/// Usage text.
pub const USAGE: &str = "\
deepsd-cli — DeepSD (ICDE 2017) supply-demand gap prediction

USAGE:
  deepsd-cli simulate --out data.dsd [--areas 16] [--days 38] [--seed 7]
                      [--volume 1.0] [--slack 1.0] [--format chunked|legacy]
                      [--shift-day N] [--shift-demand 1.6] [--shift-supply 0.6]
  deepsd-cli inspect  --data data.dsd
  deepsd-cli train    --data data.dsd --out model.json
                      [--variant basic|advanced] [--env none|weather|full]
                      [--train-days 7..24] [--eval-days 24..38]
                      [--epochs 10] [--window 20] [--dropout 0.3]
                      [--lr 0.001] [--best-k 4] [--threads 0] [--autotune 1]
                      [--max-resident-mb 0] [--metrics-out metrics.json]
  deepsd-cli evaluate --data data.dsd --model model.json [--test-days 24..38]
                      [--threads 0] [--autotune 1] [--metrics-out metrics.json]
  deepsd-cli predict  --data data.dsd --model model.json --day 30 --t 480
                      [--area 3] [--threads 0] [--autotune 1]
                      [--max-resident-mb 0] [--metrics-out metrics.json]
                      [--ingest-policy reject|drop-late|reorder:<minutes>]
                      [--fault-shuffle 5] [--fault-drop 0.1] [--fault-dup 0.1]
                      [--fault-seed 7]
                      [--blackout-weather 400..600] [--blackout-traffic 0..1439]
  deepsd-cli serve    --data data.dsd --model model.json [--addr 127.0.0.1:8017]
                      [--queue 64] [--deadline-ms 500] [--read-timeout-ms 1000]
                      [--max-batch 64] [--breaker-trip 3] [--breaker-restore 2]
                      [--ingest-policy reject|drop-late|reorder:<minutes>]
                      [--max-resident-mb 0] [--threads 0] [--autotune 1]
                      [--metrics-out metrics.json]
                      [--continual 1] [--continual-window 36]
                      [--continual-cadence 512] [--continual-margin 0.01]
                      [--continual-epochs 2] [--continual-lr 0.0002]
                      [--shadow-checkpoint shadow.ckpt] [--training-mae M]

`predict` streams the day's orders through the online serving path:
`--ingest-policy` selects how late/duplicate/unknown-area orders are
handled, the `--fault-*` flags inject seeded stream faults for drills,
and `--blackout-*` declares environment-feed outages (minute ranges of
the prediction day). Feed status and ingest counters are printed with
the predictions. `train` writes checksummed checkpoints; `evaluate` and
`predict` verify them on load (legacy bare-JSON models still load).
`simulate` writes the chunked `DEEPSD-DATA2` container by default,
streamed area by area in bounded memory (`--format legacy` keeps the
old whole-blob format; both formats load everywhere). `train`, `predict`
and `serve` stream chunked containers area by area instead of
materialising the dataset; `--max-resident-mb` caps both the extractor's
per-area state and the trainer's item cache (0 = unbounded), trading
extraction time for flat memory — results are bit-identical at any cap.
`--threads` sets the worker-thread count for the parallel kernels, the
training shard pool and batch scoring (0 = auto-detect); results are
bit-identical at any thread count. `--autotune 1` runs a bounded startup
sweep that picks the GEMM block sizes for this machine (tens of ms;
blocking can only change speed, never result bits). `--metrics-out` writes a telemetry
JSON snapshot (counters, gauges, latency histograms, per-epoch training
events) next to the command's normal output. `serve --continual 1` runs
online continual learning: a background shadow copy of the model
fine-tunes on a sliding window of recently observed orders and is
promoted into serving (between micro-batches, atomically) only when it
beats the live weights by `--continual-margin` on a held-out recent
slice; `--shadow-checkpoint` persists promoted shadows and resumes from
them on restart, and `--training-mae` seeds the drift gauges exposed on
`/metrics`. `simulate --shift-day N` injects a persistent demand/supply
regime shift at day N for drift drills (pre-shift days stay
byte-identical to an unshifted run).
";

/// Applies the shared performance flags: `--threads N` caps kernel and
/// shard-pool workers, `--autotune 1` runs the startup GEMM block-size
/// sweep ([`deepsd::tune`]). Off by default: the sweep costs tens of
/// milliseconds and its outcome is machine-dependent, but it can only
/// move throughput — results are bit-identical under any tuning.
fn apply_perf_flags(args: &Args) -> CmdResult {
    deepsd::set_num_threads(args.get_or("threads", 0usize)?);
    if args.get_or("autotune", 0u8)? != 0 {
        let report = deepsd::tune();
        eprintln!(
            "[autotune] kernel path {}: mc={} kc={} par_flop_threshold={} (sweep {:.1} ms)",
            deepsd::kernel_path(),
            report.tuning.mc,
            report.tuning.kc,
            report.tuning.par_flop_threshold,
            report.sweep_ms,
        );
    }
    Ok(())
}

/// Writes the telemetry JSON snapshot to `--metrics-out` when the flag
/// is present; a fresh registry is created either way so instrumented
/// paths always have a sink.
fn write_metrics_out(args: &Args, telemetry: &Telemetry) -> CmdResult {
    if let Some(path) = args.get("metrics-out") {
        telemetry.write_json(path)?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

/// `simulate`: generate a dataset and write it to disk. The default
/// `chunked` format streams area by area through a [`ChunkWriter`], so
/// peak memory stays flat no matter how many areas the city has;
/// `legacy` materialises the whole dataset and writes the old
/// single-blob format.
pub fn simulate(args: &Args) -> CmdResult {
    args.check_known(&[
        "out",
        "areas",
        "days",
        "seed",
        "volume",
        "slack",
        "format",
        "shift-day",
        "shift-demand",
        "shift-supply",
    ])?;
    let out = args.require("out")?;
    // `--shift-day N` injects a persistent regime shift (drift drill
    // scenario): demand and supply change levels from day N on while
    // the pre-shift days stay byte-identical to an unshifted run.
    let shift = match args.get("shift-day") {
        None => None,
        Some(_) => Some(deepsd_simdata::RegimeShift {
            day: args.require_parsed("shift-day")?,
            demand_factor: args.get_or("shift-demand", 1.6f64)?,
            supply_factor: args.get_or("shift-supply", 0.6f64)?,
        }),
    };
    let config = SimConfig {
        city: CityConfig {
            n_areas: args.get_or("areas", 16u16)?,
            seed: args.get_or("seed", 7u64)?,
        },
        n_days: args.get_or("days", 38u16)?,
        orders: OrderGenConfig {
            demand_volume: args.get_or("volume", 1.0f64)?,
            supply_slack: args.get_or("slack", 1.0f64)?,
            shift,
        },
        ..SimConfig::smoke(0)
    };
    eprintln!(
        "simulating {} areas x {} days (seed {})…",
        config.city.n_areas, config.n_days, config.city.seed
    );
    let format = args.get("format").unwrap_or("chunked");
    let (total, invalid) = match format {
        "chunked" => {
            let mut gen = StreamGenerator::new(&config);
            let file = std::io::BufWriter::new(fs::File::create(out)?);
            let mut w = ChunkWriter::new(file, gen.city(), config.n_days, gen.weather(), true)?;
            let (mut total, mut invalid) = (0u64, 0u64);
            for area in 0..gen.n_areas() as u16 {
                let block = gen.area_block(area)?;
                total += block.orders.len() as u64;
                invalid += block.orders.iter().filter(|o| !o.valid).count() as u64;
                w.write_area(&block)?;
            }
            w.finish()?;
            (total, invalid)
        }
        "legacy" => {
            let ds = SimDataset::generate(&config);
            fs::write(out, encode_dataset(&ds))?;
            (ds.total_orders() as u64, ds.total_invalid() as u64)
        }
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown format '{other}' (expected chunked|legacy)"
            ))))
        }
    };
    println!(
        "wrote {out}: {total} orders ({invalid} unanswered), {:.1} MiB ({format})",
        fs::metadata(out)?.len() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

fn load_dataset(args: &Args) -> Result<SimDataset, Box<dyn std::error::Error>> {
    let path = args.require("data")?;
    let blob = fs::read(path)?;
    Ok(decode_dataset(&blob)?)
}

/// Opens `--data` as a bounded-memory [`AreaSource`]: chunked
/// `DEEPSD-DATA2` containers are read lazily chunk by chunk (checksums
/// verified on every read), legacy whole-blob files are decoded and
/// adapted. Only the chunked path keeps memory flat; the legacy path
/// exists so old datasets keep working.
fn open_area_source(args: &Args) -> Result<Box<dyn AreaSource + Send>, Box<dyn std::error::Error>> {
    let path = args.require("data")?;
    let mut file = fs::File::open(path)?;
    let mut magic = [0u8; 12];
    let n = file.read(&mut magic)?;
    file.seek(std::io::SeekFrom::Start(0))?;
    if n == magic.len() && &magic == b"DEEPSD-DATA2" {
        Ok(Box::new(ChunkReader::open(std::io::BufReader::new(file))?))
    } else {
        drop(file);
        Ok(Box::new(load_dataset(args)?))
    }
}

/// `inspect`: print a dataset summary.
pub fn inspect(args: &Args) -> CmdResult {
    args.check_known(&["data"])?;
    let ds = load_dataset(args)?;
    println!("areas: {}", ds.n_areas());
    println!("days:  {}", ds.n_days);
    println!(
        "orders: {} ({} unanswered, {:.1}%)",
        ds.total_orders(),
        ds.total_invalid(),
        100.0 * ds.total_invalid() as f64 / ds.total_orders().max(1) as f64
    );
    println!("\narea  archetype        demand_scale  orders");
    for area in &ds.city.areas {
        println!(
            "{:>4}  {:<15} {:>12.2} {:>8}",
            area.id,
            format!("{:?}", area.archetype),
            area.demand_scale,
            ds.orders(area.id).len()
        );
    }
    Ok(())
}

fn feature_config(args: &Args) -> Result<FeatureConfig, ArgError> {
    Ok(FeatureConfig {
        window_l: args.get_or("window", 20usize)?,
        history_window: args.get_or("history-window", 6usize)?,
        train_stride: args.get_or("stride", 10usize)?,
        ..FeatureConfig::default()
    })
}

/// `train`: train a model on a dataset and write a JSON checkpoint.
pub fn train_cmd(args: &Args) -> CmdResult {
    args.check_known(&[
        "data",
        "out",
        "variant",
        "env",
        "train-days",
        "eval-days",
        "epochs",
        "window",
        "dropout",
        "lr",
        "best-k",
        "history-window",
        "stride",
        "threads",
        "autotune",
        "max-resident-mb",
        "metrics-out",
    ])?;
    apply_perf_flags(args)?;
    let max_resident_mb = args.get_or("max-resident-mb", 0usize)?;
    let source = open_area_source(args)?;
    let n_days = source.n_days();
    let n_areas = source.n_areas();
    let out = args.require("out")?;
    let fcfg = feature_config(args)?;
    let train_days = args.get_range("train-days", 7..(n_days.saturating_sub(14)).max(8))?;
    let eval_days = args.get_range("eval-days", train_days.end..n_days)?;
    if eval_days.end > n_days {
        return Err(Box::new(ArgError(format!(
            "--eval-days ends at {} but the dataset has {} days",
            eval_days.end, n_days
        ))));
    }

    let variant = match args.get("variant").unwrap_or("advanced") {
        "basic" => Variant::Basic,
        "advanced" => Variant::Advanced,
        other => return Err(Box::new(ArgError(format!("unknown variant '{other}'")))),
    };
    let env = match args.get("env").unwrap_or("full") {
        "none" => EnvBlocks::None,
        "weather" => EnvBlocks::Weather,
        "full" => EnvBlocks::WeatherTraffic,
        other => return Err(Box::new(ArgError(format!("unknown env '{other}'")))),
    };

    let mut mcfg = match variant {
        Variant::Basic => ModelConfig::basic(n_areas),
        Variant::Advanced => ModelConfig::advanced(n_areas),
    };
    mcfg.window_l = fcfg.window_l;
    mcfg.env = env;
    mcfg.dropout = args.get_or("dropout", 0.3f32)?;

    // Stream items from the source instead of materialising the whole
    // dataset; the resident budget caps per-area feature state and
    // (through TrainOptions) the trainer's epoch item cache.
    let mut fx =
        StreamingExtractor::new(source, fcfg.clone()).with_max_resident_mb(max_resident_mb);
    let tr = train_keys(n_areas as u16, train_days.clone(), &fcfg);
    let te = test_keys(n_areas as u16, eval_days.clone(), &fcfg);
    let eval_items = fx.extract_all(&te);
    eprintln!(
        "training {variant:?} on {} items (days {train_days:?}), evaluating on {} items",
        tr.len(),
        eval_items.len()
    );

    let mut model = DeepSD::new(mcfg);
    let telemetry = Telemetry::new();
    let opts = TrainOptions {
        epochs: args.get_or("epochs", 10usize)?,
        best_k: args.get_or("best-k", 4usize)?,
        learning_rate: args.get_or("lr", 1e-3f32)?,
        threads: args.get_or("threads", 0usize)?,
        max_resident_mb,
        telemetry: Some(telemetry.clone()),
        ..TrainOptions::default()
    };
    let report = train(&mut model, &mut fx, &tr, &eval_items, &opts);
    for e in &report.epochs {
        eprintln!(
            "epoch {:>2}: loss {:>8.3}  MAE {:.3}  RMSE {:.3} ({:.1}s)",
            e.epoch, e.train_loss, e.eval_mae, e.eval_rmse, e.seconds
        );
    }
    if report.divergence_recoveries > 0 {
        eprintln!(
            "warning: training diverged {} time(s); recovered by rollback + LR halving",
            report.divergence_recoveries
        );
    }
    println!(
        "final: MAE {:.3}, RMSE {:.3}",
        report.final_mae, report.final_rmse
    );
    save_checkpoint(out, &model)?;
    println!(
        "wrote {out} ({} parameters, checksummed)",
        model.num_parameters()
    );
    // Training is offline — ingest counters are legitimately zero and
    // the feed gauges reflect the eval window — but recording both
    // keeps every snapshot section present for downstream dashboards.
    telemetry.record_ingest(&Default::default());
    telemetry.record_feeds(&fx.feed_status(eval_days.start, 0));
    telemetry.set_gauge("train_final_mae", report.final_mae);
    telemetry.set_gauge("train_final_rmse", report.final_rmse);
    write_metrics_out(args, &telemetry)?;
    Ok(())
}

fn load_model(args: &Args) -> Result<DeepSD, Box<dyn std::error::Error>> {
    let path = args.require("model")?;
    Ok(load_checkpoint(path)?)
}

/// `evaluate`: metrics of a checkpoint on a dataset split, with the
/// empirical-average baseline for context.
pub fn evaluate(args: &Args) -> CmdResult {
    args.check_known(&[
        "data",
        "model",
        "test-days",
        "window",
        "history-window",
        "stride",
        "threads",
        "autotune",
        "metrics-out",
    ])?;
    apply_perf_flags(args)?;
    let ds = load_dataset(args)?;
    let model = load_model(args)?;
    let mut fcfg = feature_config(args)?;
    fcfg.window_l = model.config().window_l;
    let test_days = args.get_range(
        "test-days",
        (ds.n_days.saturating_sub(14)).max(1)..ds.n_days,
    )?;

    let mut fx = FeatureExtractor::new(&ds, fcfg.clone());
    let te = test_keys(ds.n_areas() as u16, test_days.clone(), &fcfg);
    let items = fx.extract_all(&te);
    if items.is_empty() {
        // Reachable with a degenerate --test-days range; a typed error
        // beats the assertion abort inside evaluate_model.
        return Err(Box::new(RunError(format!(
            "--test-days {test_days:?} yields no test items"
        ))));
    }
    let eval = evaluate_model(&model, &items, 256);

    // Context baseline: empirical average fitted on the preceding days.
    let warmup = 0..test_days.start;
    let avg_keys: Vec<ItemKey> = train_keys(ds.n_areas() as u16, warmup, &fcfg);
    println!("test items: {} (days {test_days:?})", eval.n);
    println!("model     MAE {:.3}  RMSE {:.3}", eval.mae, eval.rmse);
    if !avg_keys.is_empty() {
        let avg = EmpiricalAverage::fit(&fx, &avg_keys);
        let truth: Vec<f32> = items.iter().map(|i| i.gap).collect();
        let avg_eval = deepsd::evaluate(&avg.predict_all(&te), &truth);
        println!(
            "average   MAE {:.3}  RMSE {:.3}",
            avg_eval.mae, avg_eval.rmse
        );
    }
    let telemetry = Telemetry::new();
    telemetry.set_gauge("eval_mae", eval.mae);
    telemetry.set_gauge("eval_rmse", eval.rmse);
    telemetry.set_gauge("eval_items", eval.n as f64);
    write_metrics_out(args, &telemetry)?;
    Ok(())
}

/// `predict`: gap predictions for one timeslot (all areas, or one),
/// served through the online streaming path with optional fault
/// injection and feed blackouts.
pub fn predict(args: &Args) -> CmdResult {
    args.check_known(&[
        "data",
        "model",
        "day",
        "t",
        "area",
        "window",
        "history-window",
        "stride",
        "ingest-policy",
        "fault-shuffle",
        "fault-drop",
        "fault-dup",
        "fault-seed",
        "blackout-weather",
        "blackout-traffic",
        "max-resident-mb",
        "threads",
        "autotune",
        "metrics-out",
    ])?;
    apply_perf_flags(args)?;
    let mut source = open_area_source(args)?;
    let model = load_model(args)?;
    let mut fcfg = feature_config(args)?;
    fcfg.window_l = model.config().window_l;
    let day: u16 = args.require_parsed("day")?;
    let t: u16 = args.require_parsed("t")?;
    let n_days = source.n_days();
    if day >= n_days {
        return Err(Box::new(RunError(format!(
            "--day {day} out of range (dataset has {n_days} days)"
        ))));
    }
    let n_areas = source.n_areas();
    let areas: Vec<u16> = match args.get("area") {
        Some(_) => vec![args.require_parsed("area")?],
        None => (0..n_areas as u16).collect(),
    };

    let policy = match args.get("ingest-policy") {
        None => IngestPolicy::Reject,
        Some(raw) => IngestPolicy::parse(raw).map_err(ArgError)?,
    };
    let plan = FaultPlan {
        seed: args.get_or("fault-seed", 7u64)?,
        shuffle_slack: args.get_or("fault-shuffle", 0u16)?,
        drop_rate: args.get_or("fault-drop", 0.0f64)?,
        duplicate_rate: args.get_or("fault-dup", 0.0f64)?,
    };
    let mut health = FeedHealth::default();
    for (flag, kind) in [
        ("blackout-weather", FeedKind::Weather),
        ("blackout-traffic", FeedKind::Traffic),
    ] {
        if args.get(flag).is_some() {
            let r = args.get_range(flag, 0..1)?;
            health.add_day_outage(kind, day, r.start, r.end);
        }
    }

    // Replay snapshot: one pass over the source keeping only the target
    // day's pre-window orders per area, so replaying a 10k-area city
    // never materializes more than the tick being replayed.
    let mut replay: Vec<Vec<Order>> = Vec::with_capacity(n_areas);
    for area in 0..n_areas as u16 {
        let block = source.area_block(area)?;
        replay.push(
            block
                .orders
                .into_iter()
                .filter(|o| o.day == day && o.ts < t)
                .collect(),
        );
    }

    let mut fx = StreamingExtractor::new(source, fcfg)
        .with_max_resident_mb(args.get_or("max-resident-mb", 0usize)?);
    fx.set_feed_health(health);
    let telemetry = Telemetry::new();
    let mut predictor = OnlinePredictor::with_policy(model, fx, policy);
    predictor.set_telemetry(telemetry.clone());
    for (area, stream) in replay.iter().enumerate() {
        let batch = predictor.observe_all(&plan.apply(stream));
        // Policy-aware partial ingest: the whole tick is applied and any
        // rejected orders are summarised instead of aborting the run.
        if !batch.is_clean() {
            eprintln!("area {area}: {batch}");
        }
    }
    drop(replay);

    let report = predictor.predict_all_report(day, t);
    println!("day {day}, window [{t}, {}):", t + 10);
    println!("policy: {policy}");
    println!("feeds:  {}", report.feeds);
    println!("ingest: {}", report.ingest);
    println!("area  predicted  actual");
    for &area in &areas {
        let actual = predictor.extractor_mut().gap(ItemKey { area, day, t });
        println!(
            "{:>4} {:>10.2} {:>7}",
            area, report.predictions[area as usize], actual
        );
    }
    write_metrics_out(args, &telemetry)?;
    Ok(())
}

/// `serve`: run the fault-contained HTTP daemon over a checkpoint.
///
/// Binds the address, serves `/predict`, `/observe`, `/metrics`,
/// `/healthz` and `/readyz` until `POST /shutdown`, then drains in-flight
/// connections and prints the engine's lifetime stats.
pub fn serve(args: &Args) -> CmdResult {
    args.check_known(&[
        "data",
        "model",
        "addr",
        "queue",
        "deadline-ms",
        "read-timeout-ms",
        "max-batch",
        "breaker-trip",
        "breaker-restore",
        "ingest-policy",
        "window",
        "history-window",
        "stride",
        "max-resident-mb",
        "threads",
        "autotune",
        "metrics-out",
        "continual",
        "continual-window",
        "continual-cadence",
        "continual-margin",
        "continual-epochs",
        "continual-lr",
        "shadow-checkpoint",
        "training-mae",
    ])?;
    apply_perf_flags(args)?;
    let source = open_area_source(args)?;
    let model = load_model(args)?;
    let mut fcfg = feature_config(args)?;
    fcfg.window_l = model.config().window_l;
    let policy = match args.get("ingest-policy") {
        None => IngestPolicy::Reject,
        Some(raw) => IngestPolicy::parse(raw).map_err(ArgError)?,
    };
    let continual_on = args.get_or("continual", 0u8)? != 0;
    // The shadow starts from the serving weights (or a previously
    // promoted shadow checkpoint, letting a restart resume where
    // continual learning left off).
    let shadow_model = if continual_on {
        Some(match args.get("shadow-checkpoint") {
            Some(path) if fs::metadata(path).is_ok() => load_checkpoint(path)?,
            _ => model.clone(),
        })
    } else {
        None
    };
    let shadow_fcfg = fcfg.clone();

    let read_timeout_ms = args.get_or("read-timeout-ms", 1_000u64)?;
    let config = ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8017").to_string(),
        queue_capacity: args.get_or("queue", 64usize)?,
        deadline_ms: args.get_or("deadline-ms", 500u64)?,
        read_timeout_ms,
        write_timeout_ms: read_timeout_ms,
        max_batch: args.get_or("max-batch", 64usize)?,
        breaker_trip: args.get_or("breaker-trip", 3u32)?,
        breaker_restore: args.get_or("breaker-restore", 2u32)?,
        ..ServeConfig::default()
    };

    let telemetry = Telemetry::new();
    let fx = StreamingExtractor::new(source, fcfg)
        .with_max_resident_mb(args.get_or("max-resident-mb", 0usize)?);
    let mut predictor = OnlinePredictor::with_policy(model, fx, policy);
    predictor.set_telemetry(telemetry.clone());

    let mut server = Server::bind(config, telemetry.clone())?;

    // Continual learning: a background shadow trainer consumes the
    // observed order stream, fine-tunes a shadow model on a sliding
    // recent window and promotes it through the handoff slot; the
    // engine installs promotions between micro-batches.
    let mut shadow_worker = None;
    if let Some(shadow) = shadow_model {
        let (orders_tx, orders_rx) = std::sync::mpsc::channel::<Vec<Order>>();
        let handoff = deepsd::Handoff::new();
        server.set_continual(orders_tx, handoff.clone());
        let shadow_source = open_area_source(args)?;
        let shadow_fx = StreamingExtractor::new(shadow_source, shadow_fcfg)
            .with_max_resident_mb(args.get_or("max-resident-mb", 0usize)?);
        let ccfg = deepsd::ContinualConfig {
            window_ticks: args.get_or("continual-window", 36usize)?,
            cadence: args.get_or("continual-cadence", 512u64)?,
            margin: args.get_or("continual-margin", 0.01f64)?,
            epochs: args.get_or("continual-epochs", 2usize)?,
            learning_rate: args.get_or("continual-lr", 2e-4f32)?,
            shadow_path: args.get("shadow-checkpoint").map(str::to_string),
            threads: args.get_or("threads", 0usize)?,
            ..deepsd::ContinualConfig::default()
        };
        println!(
            "continual: window {} ticks, cadence {} orders, margin {}, {} epochs/round",
            ccfg.window_ticks, ccfg.cadence, ccfg.margin, ccfg.epochs
        );
        let mut trainer = deepsd::ShadowTrainer::new(shadow, shadow_fx, ccfg, handoff);
        trainer.set_telemetry(telemetry.clone());
        let training_mae = args.get_or("training-mae", f64::NAN)?;
        if training_mae.is_finite() {
            trainer.set_training_mae(training_mae);
        }
        shadow_worker = Some(
            std::thread::Builder::new()
                .name("deepsd-continual".to_string())
                .spawn(move || {
                    // The channel closes when the engine (the only
                    // sender) drains; the worker then reports totals.
                    while let Ok(orders) = orders_rx.recv() {
                        for event in trainer.ingest(&orders) {
                            eprintln!("[continual] {}", event.render());
                        }
                    }
                    (trainer.rounds(), trainer.generation())
                })?,
        );
    }

    println!("serving on http://{}", server.local_addr());
    println!("policy: {policy}");
    println!("endpoints: GET /predict?day=D&t=T[&area=A]  POST /observe");
    println!("           GET /metrics /healthz /readyz    POST /shutdown");
    let stats = server.run(&mut predictor)?;
    println!(
        "drained: {} served, {} predict calls ({} coalesced), {} expired, {} observe batches",
        stats.served, stats.predict_calls, stats.coalesced, stats.expired, stats.observes
    );
    if let Some(worker) = shadow_worker {
        if let Ok((rounds, generation)) = worker.join() {
            println!(
                "continual: {rounds} fine-tune rounds, {} swaps installed, final generation {generation}",
                stats.swaps
            );
        }
    }
    write_metrics_out(args, &telemetry)?;
    Ok(())
}
