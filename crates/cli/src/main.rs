//! `deepsd-cli` — command-line front end for the DeepSD reproduction.
//!
//! Subcommands: `simulate`, `inspect`, `train`, `evaluate`, `predict`,
//! `serve`.
//! Run without arguments for usage.

// Serving-critical front end: production code must not unwrap/expect
// (test code is exempt via clippy.toml's allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::float_cmp))]

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{}", commands::USAGE);
        return;
    }
    let parsed = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command() {
        "simulate" => commands::simulate(&parsed),
        "inspect" => commands::inspect(&parsed),
        "train" => commands::train_cmd(&parsed),
        "evaluate" => commands::evaluate(&parsed),
        "predict" => commands::predict(&parsed),
        "serve" => commands::serve(&parsed),
        other => {
            eprintln!("error: unknown subcommand '{other}'\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        // A usage mistake (missing/garbled flag) prints the usage text
        // and exits 2 like top-level parse failures; runtime failures
        // (I/O, bad files) stay exit 1 without the usage wall.
        if e.is::<args::ArgError>() {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
