//! `deepsd-cli` — command-line front end for the DeepSD reproduction.
//!
//! Subcommands: `simulate`, `inspect`, `train`, `evaluate`, `predict`.
//! Run without arguments for usage.

mod args;
mod commands;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{}", commands::USAGE);
        return;
    }
    let parsed = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command() {
        "simulate" => commands::simulate(&parsed),
        "inspect" => commands::inspect(&parsed),
        "train" => commands::train_cmd(&parsed),
        "evaluate" => commands::evaluate(&parsed),
        "predict" => commands::predict(&parsed),
        other => {
            eprintln!("error: unknown subcommand '{other}'\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
