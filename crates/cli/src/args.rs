//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::ops::Range;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone)]
pub struct Args {
    command: String,
    flags: HashMap<String, String>,
}

/// Argument parsing / validation failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv[1..]`: first token is the subcommand, the rest must
    /// be `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?
            .clone();
        let mut flags = HashMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --flag, got '{key}'")))?;
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
            if flags.insert(key.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("--{key} given twice")));
            }
        }
        Ok(Args { command, flags })
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required --{key}")))
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{raw}'"))),
        }
    }

    /// Required typed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse '{raw}'")))
    }

    /// A day range flag in `start..end` form.
    pub fn get_range(&self, key: &str, default: Range<u16>) -> Result<Range<u16>, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => {
                let (a, b) = raw
                    .split_once("..")
                    .ok_or_else(|| ArgError(format!("--{key}: expected start..end")))?;
                let start: u16 = a
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad start '{a}'")))?;
                let end: u16 = b
                    .parse()
                    .map_err(|_| ArgError(format!("--{key}: bad end '{b}'")))?;
                if start >= end {
                    return Err(ArgError(format!("--{key}: empty range {start}..{end}")));
                }
                Ok(start..end)
            }
        }
    }

    /// Rejects flags outside the allowed set (typo protection).
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{key} (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv(&["train", "--epochs", "5", "--out", "m.json"])).unwrap();
        assert_eq!(a.command(), "train");
        assert_eq!(a.get("epochs"), Some("5"));
        assert_eq!(a.get_or::<usize>("epochs", 1).unwrap(), 5);
        assert_eq!(a.require("out").unwrap(), "m.json");
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&["simulate"])).unwrap();
        assert_eq!(a.get_or::<u16>("areas", 16).unwrap(), 16);
        assert_eq!(a.get_range("train-days", 0..5).unwrap(), 0..5);
    }

    #[test]
    fn range_parsing() {
        let a = Args::parse(&argv(&["x", "--days", "7..24"])).unwrap();
        assert_eq!(a.get_range("days", 0..1).unwrap(), 7..24);
        let bad = Args::parse(&argv(&["x", "--days", "24..7"])).unwrap();
        assert!(bad.get_range("days", 0..1).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&argv(&[])).is_err());
        assert!(Args::parse(&argv(&["x", "oops"])).is_err());
        assert!(Args::parse(&argv(&["x", "--k"])).is_err());
        assert!(Args::parse(&argv(&["x", "--k", "1", "--k", "2"])).is_err());
    }

    #[test]
    fn unknown_flags_detected() {
        let a = Args::parse(&argv(&["x", "--oops", "1"])).unwrap();
        assert!(a.check_known(&["fine"]).is_err());
        assert!(a.check_known(&["oops"]).is_ok());
    }

    #[test]
    fn parse_errors_carry_messages() {
        let a = Args::parse(&argv(&["x", "--n", "abc"])).unwrap();
        let err = a.get_or::<usize>("n", 0).unwrap_err();
        assert!(err.0.contains("abc"));
    }
}
