//! End-to-end tests of the `deepsd-cli` binary: simulate → inspect →
//! train → evaluate → predict over real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_deepsd-cli"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("deepsd-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_pipeline_roundtrip() {
    let dir = tmpdir("full");
    let data = dir.join("city.dsd");
    let model = dir.join("model.json");

    // simulate
    let out = bin()
        .args([
            "simulate",
            "--out",
            data.to_str().unwrap(),
            "--areas",
            "4",
            "--days",
            "12",
            "--seed",
            "5",
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(data.exists());

    // inspect
    let out = bin()
        .args(["inspect", "--data", data.to_str().unwrap()])
        .output()
        .expect("run inspect");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("areas: 4"), "inspect output: {text}");
    assert!(text.contains("days:  12"));

    // train (tiny: 1 epoch, small window)
    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--variant",
            "basic",
            "--epochs",
            "1",
            "--window",
            "8",
            "--train-days",
            "7..10",
            "--eval-days",
            "10..12",
            "--stride",
            "60",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final: MAE"), "train output: {text}");

    // evaluate
    let out = bin()
        .args([
            "evaluate",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--test-days",
            "10..12",
        ])
        .output()
        .expect("run evaluate");
    assert!(
        out.status.success(),
        "evaluate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("model     MAE"));

    // predict
    let out = bin()
        .args([
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--day",
            "11",
            "--t",
            "480",
        ])
        .output()
        .expect("run predict");
    assert!(
        out.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // One line per area plus header.
    assert!(text.lines().count() >= 6, "predict output: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    // No args → usage on stdout, success.
    let out = bin().output().expect("run bare");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    // Unknown subcommand → exit 2.
    let out = bin().args(["frobnicate"]).output().expect("run unknown");
    assert_eq!(out.status.code(), Some(2));

    // Unknown flag → usage error: clear message + usage text, exit 2.
    let out = bin()
        .args(["simulate", "--oops", "1", "--out", "/tmp/never.dsd"])
        .output()
        .expect("run bad flag");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"));
    assert!(stderr.contains("USAGE"));

    // Missing file → error, not panic.
    let out = bin()
        .args(["inspect", "--data", "/tmp/definitely-not-there.dsd"])
        .output()
        .expect("run missing file");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn predict_rejects_out_of_range_day() {
    let dir = tmpdir("range");
    let data = dir.join("c.dsd");
    let model = dir.join("m.json");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            data.to_str().unwrap(),
            "--areas",
            "3",
            "--days",
            "10"
        ])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--epochs",
            "1",
            "--window",
            "8",
            "--train-days",
            "7..8",
            "--eval-days",
            "8..10",
            "--stride",
            "120",
        ])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args([
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--day",
            "99",
            "--t",
            "480",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_survives_fault_injection_and_reports_counters() {
    let dir = tmpdir("faults");
    let data = dir.join("c.dsd");
    let model = dir.join("m.ckpt");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            data.to_str().unwrap(),
            "--areas",
            "4",
            "--days",
            "12"
        ])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--variant",
            "basic",
            "--epochs",
            "1",
            "--window",
            "8",
            "--train-days",
            "7..9",
            "--eval-days",
            "9..12",
            "--stride",
            "120",
        ])
        .status()
        .unwrap()
        .success());

    // Shuffled + duplicated stream under the reorder policy, with a
    // weather blackout over the prediction window.
    let out = bin()
        .args([
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--day",
            "11",
            "--t",
            "600",
            "--ingest-policy",
            "reorder:5",
            "--fault-shuffle",
            "5",
            "--fault-dup",
            "0.2",
            "--blackout-weather",
            "550..700",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "faulty predict failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("policy: reorder:5"), "{text}");
    assert!(text.contains("weather stale"), "{text}");
    assert!(text.contains("ingest:"), "{text}");
    assert!(text.lines().count() >= 8, "{text}");

    // The same shuffled stream under the strict policy: the whole tick
    // is still served, with the rejected orders summarised per area on
    // stderr (batch ingest reports failures instead of aborting).
    let out = bin()
        .args([
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--day",
            "11",
            "--t",
            "600",
            "--fault-shuffle",
            "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "strict-policy predict must degrade, not abort: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("behind cursor"), "{err}");
    assert!(err.contains("failed"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_is_rejected_with_typed_error() {
    let dir = tmpdir("ckpt");
    let data = dir.join("c.dsd");
    let model = dir.join("m.ckpt");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            data.to_str().unwrap(),
            "--areas",
            "3",
            "--days",
            "10"
        ])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--epochs",
            "1",
            "--window",
            "8",
            "--train-days",
            "7..8",
            "--eval-days",
            "8..10",
            "--stride",
            "120",
        ])
        .status()
        .unwrap()
        .success());

    // Flip one byte in the checkpoint body.
    let mut blob = std::fs::read(&model).unwrap();
    let idx = blob.len() / 2;
    blob[idx] ^= 0x40;
    std::fs::write(&model, &blob).unwrap();

    let out = bin()
        .args([
            "evaluate",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--test-days",
            "8..10",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("checksum mismatch") || err.contains("malformed"),
        "stderr: {err}"
    );

    // Truncation is also caught.
    blob[idx] ^= 0x40;
    std::fs::write(&model, &blob[..blob.len() - 20]).unwrap();
    let out = bin()
        .args([
            "evaluate",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--test-days",
            "8..10",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("truncated"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_writes_telemetry_snapshot() {
    let dir = tmpdir("metrics");
    let data = dir.join("c.dsd");
    let model = dir.join("m.ckpt");
    let train_metrics = dir.join("train_metrics.json");
    let predict_metrics = dir.join("predict_metrics.json");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            data.to_str().unwrap(),
            "--areas",
            "4",
            "--days",
            "12",
            "--seed",
            "5"
        ])
        .status()
        .unwrap()
        .success());

    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--variant",
            "basic",
            "--epochs",
            "2",
            "--window",
            "8",
            "--train-days",
            "7..10",
            "--eval-days",
            "10..12",
            "--stride",
            "60",
            "--metrics-out",
            train_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let snapshot = std::fs::read_to_string(&train_metrics).expect("train metrics written");
    // The acceptance contract: per-epoch events, ingest counters and
    // feed-health gauges are all present in one snapshot.
    assert!(snapshot.contains("\"epochs\": ["), "snapshot: {snapshot}");
    assert!(snapshot.contains("\"train_loss\""), "snapshot: {snapshot}");
    assert!(snapshot.contains("\"epoch\": 0"), "snapshot: {snapshot}");
    assert!(snapshot.contains("\"train_epochs_total\""));
    assert!(snapshot.contains("\"ingest_accepted_total\""));
    assert!(snapshot.contains("\"feed_weather_state\""));
    assert!(snapshot.contains("\"time_epoch_seconds\""));

    let out = bin()
        .args([
            "predict",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--day",
            "10",
            "--t",
            "480",
            "--metrics-out",
            predict_metrics.to_str().unwrap(),
        ])
        .output()
        .expect("run predict");
    if out.status.success() {
        // Model loading can fail independently of telemetry (e.g. a
        // stubbed JSON codec); when predict runs, its snapshot must
        // carry the serving instrumentation.
        let snapshot = std::fs::read_to_string(&predict_metrics).expect("predict metrics written");
        assert!(snapshot.contains("\"serving_predict_calls_total\": 1"));
        assert!(snapshot.contains("time_serving_predict_latency_seconds"));
        assert!(snapshot.contains("\"feed_weather_state\""));
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_with_empty_test_range_errors_without_panicking() {
    let dir = tmpdir("emptyeval");
    let data = dir.join("c.dsd");
    let model = dir.join("m.ckpt");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            data.to_str().unwrap(),
            "--areas",
            "3",
            "--days",
            "10"
        ])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--epochs",
            "1",
            "--window",
            "8",
            "--train-days",
            "7..8",
            "--eval-days",
            "8..10",
            "--stride",
            "120",
        ])
        .status()
        .unwrap()
        .success());
    // A degenerate test window: `9..9` is statically malformed, so it
    // is rejected as a usage error (exit 2 + usage text), never an
    // assertion abort.
    let out = bin()
        .args([
            "evaluate",
            "--data",
            data.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--test-days",
            "9..9",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "stderr: {stderr}");
    assert!(stderr.contains("empty range"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
