//! The repo-invariant rules and the engine that applies them to one
//! file at a time.
//!
//! Every rule is a named pattern over the lexed token stream
//! ([`crate::lexer`]), scoped to the files where the invariant matters
//! (DESIGN.md §4.5). Findings can be suppressed with an inline
//! directive on the same or the preceding line:
//!
//! ```text
//! // deepsd-lint: allow(rule-name, reason="why this site is safe")
//! ```
//!
//! A directive without a rule name or a non-empty reason is itself a
//! finding (`lint-directive`), so suppressions stay auditable.
//! `#[cfg(test)]` items are skipped entirely: tests legitimately
//! unwrap, compare floats exactly and index slices.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// Rule names, in the order findings are reported per line.
pub const RULE_DETERMINISM_MAP_ITER: &str = "determinism-map-iter";
pub const RULE_DETERMINISM_WALLCLOCK: &str = "determinism-wallclock";
pub const RULE_SERVING_NO_PANIC: &str = "serving-no-panic";
pub const RULE_ARITH_UNDERFLOW: &str = "arith-underflow";
pub const RULE_FLOAT_EQ: &str = "float-eq";
pub const RULE_CAST_TRUNCATE: &str = "cast-truncate";
pub const RULE_UNSAFE_SCOPE: &str = "unsafe-scope";
/// Interprocedural rules (DESIGN.md §4.10) — findings come from the
/// workspace call graph, not single-file token patterns.
pub const RULE_PANIC_REACH: &str = "panic-reach";
pub const RULE_DETERMINISM_TAINT: &str = "determinism-taint";
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Malformed or unknown allow directive.
pub const RULE_LINT_DIRECTIVE: &str = "lint-directive";

/// All suppressible rules (everything except `lint-directive`).
/// `unsafe-scope` is suppressible only inside [`UNSAFE_ALLOWED_FILES`];
/// elsewhere the directive parses but the finding stands.
pub const RULES: &[&str] = &[
    RULE_DETERMINISM_MAP_ITER,
    RULE_DETERMINISM_WALLCLOCK,
    RULE_SERVING_NO_PANIC,
    RULE_ARITH_UNDERFLOW,
    RULE_FLOAT_EQ,
    RULE_CAST_TRUNCATE,
    RULE_UNSAFE_SCOPE,
    RULE_PANIC_REACH,
    RULE_DETERMINISM_TAINT,
    RULE_LOCK_ORDER,
];

/// One paragraph per rule for `--explain <rule>`, so a CI failure is
/// self-documenting.
pub fn explain(rule: &str) -> Option<&'static str> {
    match rule {
        RULE_DETERMINISM_MAP_ITER => Some(
            "Iterating a HashMap/HashSet visits entries in the hasher's order, which \
             varies between processes. In a determinism-critical module (gradient \
             reduction, trainer, telemetry snapshot) that order leaks into results and \
             breaks the repo's bit-identity contract (same seed → same bytes at any \
             worker count). Fix: collect and sort the keys first, or use a \
             BTreeMap/BTreeSet. Scope: nn/{shard,tape,optim}, core/{trainer,telemetry}.",
        ),
        RULE_DETERMINISM_WALLCLOCK => Some(
            "Instant::now/SystemTime reads outside the telemetry `time_` namespace let \
             real time influence deterministic code. Wall-clock readings are fine when \
             the enclosing fn publishes a `time_…` metric (that namespace is excluded \
             from the deterministic snapshot) or in the sanctioned modules \
             (crates/bench, crates/lint, crates/serve/src/deadline.rs). Fix: route \
             timing through a `time_` metric or the Deadline/Stopwatch helpers.",
        ),
        RULE_SERVING_NO_PANIC => Some(
            "Code on the serving hot path must degrade, never panic: a panic in a \
             handler kills the connection (or the daemon) instead of returning a \
             status code. unwrap/expect, panic!-family macros and direct indexing are \
             flagged in core/serving.rs, features/{online,feeds}.rs and all of \
             crates/serve. Fix: .get() with a degraded fallback, typed errors, or an \
             audited allow with a reason proving the site cannot fire.",
        ),
        RULE_ARITH_UNDERFLOW => Some(
            "Bare `-` between (likely unsigned) integers on a serving path panics in \
             debug and wraps to a bogus index in release when the operands arrive \
             reordered. Fix: checked_sub/saturating_sub (never flagged), or an audited \
             allow when the subtraction is provably in range.",
        ),
        RULE_FLOAT_EQ => Some(
            "`==`/`!=` against float literals or f32/f64 consts is almost always a \
             rounding bug. Compare with an epsilon, or to_bits() for exact-identity \
             checks (the intent is then explicit). Workspace-wide.",
        ),
        RULE_CAST_TRUNCATE => Some(
            "`as u8/u16/u32/usize` in index arithmetic silently truncates out-of-range \
             values. In the audited files (features/{index,stream}.rs, crates/simdata) \
             use try_from with a typed error, a widening From conversion, or document \
             the bound with an allow.",
        ),
        RULE_UNSAFE_SCOPE => Some(
            "`unsafe` is confined to the audited AVX2 microkernel (nn/kernels.rs) and \
             the lifetime transmute in nn/shard.rs; each site must carry an \
             allow(unsafe-scope, reason=…) audit note. Anywhere else the finding \
             cannot be suppressed — move the code or find a safe formulation.",
        ),
        RULE_PANIC_REACH => Some(
            "Interprocedural panic-reachability (DESIGN.md §4.10): the workspace call \
             graph is walked from the serving entry points (crates/serve handlers and \
             engine, OnlinePredictor::{observe*,predict*}, the ShadowTrainer round \
             path). Any reachable fn still containing a panic site — unwrap/expect, \
             panic!-family, direct indexing — is reported with the shortest call chain \
             from the nearest entry, so a helper in deepsd-nn that a handler reaches \
             transitively no longer sails through. Fix: degrade at the site, or audit \
             the containing fn with allow(panic-reach, reason=…) when the site \
             provably cannot fire; site-level allow(serving-no-panic) audits carry \
             over. Trait dispatch and fn pointers are over-approximated by name.",
        ),
        RULE_DETERMINISM_TAINT => Some(
            "Interprocedural determinism taint (DESIGN.md §4.10): wall-clock reads, \
             HashMap/HashSet iteration, RandomState and env-var reads are taint \
             sources; the deterministic telemetry snapshot, the trainer epoch loop \
             and the continual promotion decision are sinks. A source transitively \
             reachable from a sink makes the sink's output depend on real time, hash \
             order or the environment, breaking the promotions-are-a-pure-function-of-\
             the-stream contract. Sanitizers: publishing a `time_…` metric in the \
             same fn (wall-clock only) or an audited allow(determinism-taint, \
             reason=…); per-file determinism-rule allows carry over.",
        ),
        RULE_LOCK_ORDER => Some(
            "Interprocedural lock-order analysis (DESIGN.md §4.10): every \
             Mutex/RwLock acquisition order is extracted per fn (guards \
             over-approximated as held to end of fn) and propagated through the call \
             graph. Two fns that can acquire the same two locks in opposite orders — \
             directly or via callees — are a cross-thread deadlock window. Fix: \
             acquire in one global order, narrow a guard's scope, or audit with \
             allow(lock-order, reason=…) when the fns provably never race.",
        ),
        RULE_LINT_DIRECTIVE => Some(
            "A `// deepsd-lint: allow(rule, reason=\"…\")` directive failed to parse: \
             unknown rule name, missing reason, or malformed syntax. Suppressions \
             must stay auditable, so a broken directive is itself a finding.",
        ),
        _ => None,
    }
}

/// Modules where `HashMap`/`HashSet` iteration order would leak into
/// gradients, update order or the telemetry snapshot.
const DETERMINISM_MODULES: &[&str] = &[
    "crates/nn/src/shard.rs",
    "crates/nn/src/tape.rs",
    "crates/nn/src/optim.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/telemetry.rs",
];

/// Serving hot paths: code on the request path must degrade, not panic.
const SERVING_PATHS: &[&str] = &[
    "crates/core/src/serving.rs",
    "crates/features/src/online.rs",
    "crates/features/src/feeds.rs",
];
/// The whole serving daemon is a hot path: every connection handler and
/// the batching engine must answer with a status code, never a panic.
const SERVING_PATHS_PREFIX: &[&str] = &["crates/serve/src/"];

/// Files where narrowing casts in index arithmetic are audited.
const CAST_PATHS_EXACT: &[&str] = &[
    "crates/features/src/index.rs",
    "crates/features/src/stream.rs",
];
const CAST_PATHS_PREFIX: &[&str] = &["crates/simdata/src/"];

/// The only files where `unsafe` is sanctioned: the audited AVX2
/// microkernel in `kernels.rs` and the one lifetime transmute in
/// `shard.rs`. Every site must still carry an
/// `allow(unsafe-scope, reason="…")` audit note; anywhere else the
/// finding cannot be suppressed at all — move the code here instead.
const UNSAFE_ALLOWED_FILES: &[&str] = &["crates/nn/src/kernels.rs", "crates/nn/src/shard.rs"];

/// Crates whose whole purpose is wall-clock measurement.
const WALLCLOCK_ALLOWLIST_PREFIX: &[&str] = &["crates/bench/", "crates/lint/"];

/// The daemon's one sanctioned wall-clock module: `Deadline` and
/// `Stopwatch` wrap `Instant` so the rest of `crates/serve` stays under
/// the wallclock rule (deadline arithmetic is inherently wall-clock;
/// everything else must go through these helpers or `time_` metrics).
const WALLCLOCK_ALLOWLIST_EXACT: &[&str] = &["crates/serve/src/deadline.rs"];

/// Map-iteration methods whose order is the hasher's.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// One finding. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl Finding {
    /// Render as the canonical single-line report form.
    pub fn render(&self) -> String {
        format!("{} {}:{} {}", self.rule, self.path, self.line, self.msg)
    }
}

/// A parsed `deepsd-lint: allow(rule, reason="…")` directive.
struct Allow {
    rule: String,
    line: u32,
}

/// Lints one file. `path` must be the workspace-relative path with `/`
/// separators — rules scope on it.
pub fn lint_file(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let mut findings = Vec::new();

    let (allows, mut directive_findings) = parse_directives(path, &lexed.comments);
    findings.append(&mut directive_findings);

    let skip = test_code_mask(&lexed.tokens);
    let toks = &lexed.tokens;

    if DETERMINISM_MODULES.contains(&path) {
        rule_map_iter(path, toks, &skip, &mut findings);
    }
    if !WALLCLOCK_ALLOWLIST_PREFIX
        .iter()
        .any(|p| path.starts_with(p))
        && !WALLCLOCK_ALLOWLIST_EXACT.contains(&path)
    {
        rule_wallclock(path, toks, &skip, &mut findings);
    }
    if SERVING_PATHS.contains(&path) || SERVING_PATHS_PREFIX.iter().any(|p| path.starts_with(p)) {
        rule_no_panic(path, toks, &skip, &mut findings);
        rule_arith_underflow(path, toks, &skip, &mut findings);
    }
    rule_float_eq(path, toks, &skip, &mut findings);
    if CAST_PATHS_EXACT.contains(&path) || CAST_PATHS_PREFIX.iter().any(|p| path.starts_with(p)) {
        rule_cast_truncate(path, toks, &skip, &mut findings);
    }
    rule_unsafe_scope(path, toks, &skip, &mut findings);

    // Apply suppressions: a directive covers its own line and the next.
    // `unsafe-scope` findings outside the sanctioned files are
    // unsuppressible — the fix is moving the code, not annotating it.
    findings.retain(|f| {
        if f.rule == RULE_LINT_DIRECTIVE {
            return true;
        }
        if f.rule == RULE_UNSAFE_SCOPE && !UNSAFE_ALLOWED_FILES.contains(&path) {
            return true;
        }
        !allows
            .iter()
            .any(|a| a.rule == f.rule && (f.line == a.line || f.line == a.line + 1))
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Parses allow directives out of the comment stream. Malformed
/// directives become `lint-directive` findings.
fn parse_directives(path: &str, comments: &[Comment]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        // Anchor to the start of the comment so prose (and the doc
        // examples in this crate) that merely *mentions* the directive
        // syntax is not parsed as one.
        let Some(rest) = c.text.trim_start().strip_prefix("deepsd-lint:") else {
            continue;
        };
        let rest = rest.trim();
        match parse_allow(rest) {
            Ok(rule) => allows.push(Allow { rule, line: c.line }),
            Err(why) => findings.push(Finding {
                rule: RULE_LINT_DIRECTIVE,
                path: path.to_string(),
                line: c.line,
                msg: why,
            }),
        }
    }
    (allows, findings)
}

/// Parses `allow(rule, reason="…")`, returning the rule name.
fn parse_allow(s: &str) -> Result<String, String> {
    let body = s
        .strip_prefix("allow(")
        .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        .ok_or_else(|| "directive must be allow(rule, reason=\"…\")".to_string())?;
    let (rule, rest) = match body.split_once(',') {
        Some((r, rest)) => (r.trim(), rest.trim()),
        None => (body.trim(), ""),
    };
    if !RULES.contains(&rule) {
        return Err(format!("unknown rule '{rule}' in allow directive"));
    }
    let reason = rest
        .strip_prefix("reason=")
        .map(|r| r.trim().trim_matches('"').trim())
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!("allow({rule}) needs a non-empty reason=\"…\""));
    }
    Ok(rule.to_string())
}

/// Marks the token ranges belonging to `#[cfg(test)]` items (true =
/// skip). The item is either the next balanced `{…}` block or, for
/// block-less items, everything up to the `;`.
fn test_code_mask(toks: &[Tok]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        let mut depth = 0i32;
        let mut entered_block = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        entered_block = true;
                    }
                    "}" => {
                        depth -= 1;
                        if entered_block && depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        for flag in skip.iter_mut().take((j + 1).min(toks.len())).skip(start) {
            *flag = true;
        }
        i = j + 1;
    }
    skip
}

/// Body spans of `fn` items/closures, for "is there a `time_` metric in
/// this function" checks. Returns `(start_tok, end_tok)` pairs.
fn fn_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut stack: Vec<(usize, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut pending_fn: Option<usize> = None;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("fn") {
            pending_fn = Some(i);
            continue;
        }
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => {
                depth += 1;
                if let Some(start) = pending_fn.take() {
                    stack.push((start, depth));
                }
            }
            "}" => {
                if let Some(&(start, d)) = stack.last() {
                    if d == depth {
                        spans.push((start, i));
                        stack.pop();
                    }
                }
                depth -= 1;
            }
            ";" => {
                // `fn` declaration without a body (trait method).
                pending_fn = None;
            }
            _ => {}
        }
    }
    spans
}

/// Innermost function span containing token `i`.
fn enclosing_fn(spans: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .filter(|(s, e)| *s <= i && i <= *e)
        .min_by_key(|(s, e)| e - s)
        .copied()
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file: type
/// ascriptions (`name: HashMap<…>`, `name: &mut HashMap<…>`) and
/// constructor bindings (`let name = HashMap::new()`).
fn map_idents(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over `&`, `mut` and `::` path segments to a `:`.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct("&") || p.is_ident("mut") || p.is_punct("::") || p.kind == TokKind::Ident
            {
                // Only path/ref tokens may sit between `:` and the type.
                if p.kind == TokKind::Ident && !(p.is_ident("mut") || is_path_seg(toks, j - 1)) {
                    break;
                }
                j -= 1;
            } else {
                break;
            }
        }
        if j > 1 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            names.push(toks[j - 2].text.clone());
            continue;
        }
        // `let [mut] name = HashMap…` / `= HashSet…`
        if i >= 2 && toks[i - 1].is_punct("=") && toks[i - 2].kind == TokKind::Ident {
            names.push(toks[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True when ident token `i` is a path segment (followed by `::`).
fn is_path_seg(toks: &[Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
}

/// True when the iteration result is ordered before use: a `sort*` call
/// or an ordered collection appears in the same statement or the one
/// immediately following (`…collect(); keys.sort_unstable();`).
fn sorted_downstream(toks: &[Tok], i: usize) -> bool {
    let mut semis = 0usize;
    for t in toks.iter().skip(i).take(80) {
        if t.is_punct(";") {
            semis += 1;
            if semis == 2 {
                return false;
            }
            continue;
        }
        if t.is_punct("}") {
            return false;
        }
        if t.kind == TokKind::Ident
            && (t.text.starts_with("sort") || t.text == "BTreeMap" || t.text == "BTreeSet")
        {
            return true;
        }
    }
    false
}

fn rule_map_iter(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    let maps = map_idents(toks);
    if maps.is_empty() {
        return;
    }
    let is_map = |t: &Tok| t.kind == TokKind::Ident && maps.contains(&t.text);
    for i in 0..toks.len() {
        if skip[i] {
            continue;
        }
        // `map.iter()` / `self.map.keys()` …
        if i >= 2
            && toks[i].kind == TokKind::Ident
            && MAP_ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct(".")
            && is_map(&toks[i - 2])
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && !sorted_downstream(toks, i)
        {
            out.push(Finding {
                rule: RULE_DETERMINISM_MAP_ITER,
                path: path.to_string(),
                line: toks[i].line,
                msg: format!(
                    "iteration over hash-ordered `{}.{}()` in a determinism-critical module; sort the entries first or use a BTreeMap",
                    toks[i - 2].text, toks[i].text
                ),
            });
        }
        // `for … in &map` / `for … in map`
        if toks[i].is_ident("in") {
            for j in (i + 1)..toks.len().min(i + 8) {
                if toks[j].kind == TokKind::Punct && (toks[j].text == "{" || toks[j].text == ";") {
                    break;
                }
                if is_map(&toks[j])
                    && !toks.get(j + 1).is_some_and(|t| t.is_punct("."))
                    && !sorted_downstream(toks, j)
                {
                    out.push(Finding {
                        rule: RULE_DETERMINISM_MAP_ITER,
                        path: path.to_string(),
                        line: toks[j].line,
                        msg: format!(
                            "`for … in {}` iterates in hash order in a determinism-critical module; sort the entries first or use a BTreeMap",
                            toks[j].text
                        ),
                    });
                    break;
                }
            }
        }
    }
}

fn rule_wallclock(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    let spans = fn_spans(toks);
    let fn_has_time_metric = |i: usize| -> bool {
        let Some((s, e)) = enclosing_fn(&spans, i) else {
            return false;
        };
        toks[s..=e]
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.starts_with("time_"))
    };
    for i in 0..toks.len() {
        if skip[i] {
            continue;
        }
        let hit = (toks[i].is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("now")))
            || (toks[i].is_ident("SystemTime") && !is_path_seg_use(toks, i));
        if hit && !fn_has_time_metric(i) {
            out.push(Finding {
                rule: RULE_DETERMINISM_WALLCLOCK,
                path: path.to_string(),
                line: toks[i].line,
                msg: format!(
                    "`{}` wall-clock read outside the telemetry `time_` namespace; deterministic code must not branch on real time",
                    toks[i].text
                ),
            });
        }
    }
}

/// True for `SystemTime` appearing only in a `use …;` item.
fn is_path_seg_use(toks: &[Tok], i: usize) -> bool {
    // Walk back to the statement start; a leading `use` makes this an
    // import, which is harmless until the type is actually used.
    let mut j = i;
    while j > 0 && !toks[j - 1].is_punct(";") && !toks[j - 1].is_punct("{") {
        j -= 1;
        if toks[j].is_ident("use") {
            return true;
        }
    }
    false
}

fn rule_no_panic(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    for i in 0..toks.len() {
        if skip[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(`
        if i >= 1
            && t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|p| p.is_punct("("))
        {
            out.push(Finding {
                rule: RULE_SERVING_NO_PANIC,
                path: path.to_string(),
                line: t.line,
                msg: format!(
                    "`.{}()` on a serving hot path; return a typed error or degrade via FeedStatus instead",
                    t.text
                ),
            });
        }
        // `panic!`, `unreachable!`, `assert!` …
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.is_punct("!"))
        {
            out.push(Finding {
                rule: RULE_SERVING_NO_PANIC,
                path: path.to_string(),
                line: t.line,
                msg: format!(
                    "`{}!` on a serving hot path; degrade instead of panicking",
                    t.text
                ),
            });
        }
        // Direct indexing `expr[…]`: `[` directly after an identifier or
        // a closing `)`/`]`. Macro brackets (`vec![`) and attributes
        // (`#[…]`) don't match this shape.
        if t.is_punct("[") && i >= 1 {
            let p = &toks[i - 1];
            let indexable = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                || p.is_punct(")")
                || p.is_punct("]");
            if indexable {
                out.push(Finding {
                    rule: RULE_SERVING_NO_PANIC,
                    path: path.to_string(),
                    line: t.line,
                    msg: "direct slice indexing on a serving hot path can panic; use .get()/.get_mut() with a degraded fallback".to_string(),
                });
            }
        }
    }
}

/// Flags bare binary `-` on serving paths: slot/lag arithmetic there is
/// overwhelmingly unsigned, where a reordered operand pair panics in
/// debug and wraps to a bogus index in release. The fix is
/// `checked_sub`/`saturating_sub` (which this rule never matches) or an
/// audited `allow(arith-underflow, reason="…")` when the subtraction is
/// provably in range. Float *literals* on either side are exempt —
/// underflow is an integer hazard — but idents of float type cannot be
/// told apart lexically, so float expression arithmetic on these paths
/// also needs the saturating form or an allow.
fn rule_arith_underflow(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    for i in 1..toks.len() {
        if skip[i] || !toks[i].is_punct("-") {
            continue;
        }
        // Binary minus only: the left neighbour must end an expression;
        // anything else (`(`, `,`, `=`, `return`, …) makes it unary.
        let left = &toks[i - 1];
        let left_ends_expr = (left.kind == TokKind::Ident && !is_keyword(&left.text))
            || left.kind == TokKind::Num
            || left.is_punct(")")
            || left.is_punct("]");
        if !left_ends_expr || left.is_float_literal() {
            continue;
        }
        let Some(right) = toks.get(i + 1) else {
            continue;
        };
        let right_is_float = right.is_float_literal()
            || right.is_ident("f32")
            || right.is_ident("f64")
            || (right.is_punct("-") && toks.get(i + 2).is_some_and(Tok::is_float_literal));
        if right_is_float {
            continue;
        }
        out.push(Finding {
            rule: RULE_ARITH_UNDERFLOW,
            path: path.to_string(),
            line: toks[i].line,
            msg: "unchecked `-` between (likely unsigned) integer expressions on a serving path can underflow — debug panic, release wrap; use checked_sub/saturating_sub or an audited allow".to_string(),
        });
    }
}

/// Keywords that may directly precede a `[` without forming an index
/// expression (`return [a, b]`, `break [..]` are arrays).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "if" | "else" | "match" | "as" | "mut" | "ref" | "move"
    )
}

fn rule_float_eq(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    let is_float_operand = |i: usize, forward: bool| -> bool {
        // Literal float on this side, skipping a unary minus forward.
        let idx = if forward { i + 1 } else { i - 1 };
        let Some(t) = toks.get(idx) else { return false };
        if forward && t.is_punct("-") {
            return toks.get(idx + 1).is_some_and(Tok::is_float_literal);
        }
        if t.is_float_literal() {
            return true;
        }
        // `f32::NAN`-style consts: `f32 :: CONST` before the operator, or
        // after it.
        if forward {
            (t.is_ident("f32") || t.is_ident("f64"))
                && toks.get(idx + 1).is_some_and(|p| p.is_punct("::"))
        } else {
            t.kind == TokKind::Ident
                && idx >= 2
                && toks[idx - 1].is_punct("::")
                && (toks[idx - 2].is_ident("f32") || toks[idx - 2].is_ident("f64"))
        }
    };
    for i in 0..toks.len() {
        if skip[i] {
            continue;
        }
        if !(toks[i].is_punct("==") || toks[i].is_punct("!=")) || i == 0 {
            continue;
        }
        if is_float_operand(i, false) || is_float_operand(i, true) {
            out.push(Finding {
                rule: RULE_FLOAT_EQ,
                path: path.to_string(),
                line: toks[i].line,
                msg: format!(
                    "`{}` against a float literal; compare with an epsilon or to_bits() for exact-identity checks",
                    toks[i].text
                ),
            });
        }
    }
}

fn rule_cast_truncate(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "usize"];
    for i in 0..toks.len() {
        if skip[i] {
            continue;
        }
        if toks[i].is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && NARROW.contains(&t.text.as_str()))
        {
            out.push(Finding {
                rule: RULE_CAST_TRUNCATE,
                path: path.to_string(),
                line: toks[i].line,
                msg: format!(
                    "`as {}` cast in index arithmetic can silently truncate; use try_from or document the bound",
                    toks[i + 1].text
                ),
            });
        }
    }
}

fn rule_unsafe_scope(path: &str, toks: &[Tok], skip: &[bool], out: &mut Vec<Finding>) {
    let sanctioned = UNSAFE_ALLOWED_FILES.contains(&path);
    for (i, t) in toks.iter().enumerate() {
        if skip[i] || !t.is_ident("unsafe") {
            continue;
        }
        let msg = if sanctioned {
            "`unsafe` must carry an audited allow(unsafe-scope, reason=\"…\") annotation on the same or preceding line".to_string()
        } else {
            format!(
                "`unsafe` is confined to {}; move the code there or find a safe formulation (this finding cannot be suppressed)",
                UNSAFE_ALLOWED_FILES.join(", ")
            )
        };
        out.push(Finding {
            rule: RULE_UNSAFE_SCOPE,
            path: path.to_string(),
            line: t.line,
            msg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- determinism-map-iter -------------------------------------------

    #[test]
    fn map_iteration_flagged_in_determinism_module() {
        let src = r#"
            use std::collections::HashMap;
            fn reduce(grads: &HashMap<u32, f32>) -> f32 {
                let mut acc = 0.0;
                for (_, g) in grads.iter() { acc += g; }
                acc
            }
        "#;
        let f = lint_file("crates/nn/src/optim.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DETERMINISM_MAP_ITER]);
    }

    #[test]
    fn sorted_map_iteration_is_allowed() {
        let src = r#"
            use std::collections::HashMap;
            fn reduce(grads: &HashMap<u32, f32>) -> Vec<u32> {
                let mut keys: Vec<u32> = grads.keys().copied().collect::<Vec<_>>();
                keys.sort_unstable();
                keys
            }
        "#;
        let f = lint_file("crates/nn/src/optim.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn for_in_map_flagged() {
        let src = r#"
            use std::collections::HashMap;
            fn dump(m: HashMap<String, u64>) {
                for k in &m { let _ = k; }
            }
        "#;
        let f = lint_file("crates/core/src/telemetry.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DETERMINISM_MAP_ITER]);
    }

    #[test]
    fn map_iteration_ignored_outside_scope() {
        let src = r#"
            use std::collections::HashMap;
            fn dump(m: &HashMap<String, u64>) { for k in m.keys() { let _ = k; } }
        "#;
        assert!(lint_file("crates/features/src/extract.rs", src).is_empty());
    }

    #[test]
    fn vec_iteration_not_confused_with_map() {
        let src = r#"
            use std::collections::HashMap;
            fn ok(v: &Vec<f32>, lookup: &HashMap<u32, f32>) -> f32 {
                v.iter().map(|x| lookup.get(&(*x as u32)).copied().unwrap_or(0.0)).sum()
            }
        "#;
        let f = lint_file("crates/nn/src/tape.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // --- determinism-wallclock ------------------------------------------

    #[test]
    fn instant_now_flagged_outside_time_namespace() {
        let src = r#"
            fn seed() -> u64 { let t = std::time::Instant::now(); 0 }
        "#;
        let f = lint_file("crates/core/src/trainer.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_DETERMINISM_WALLCLOCK]);
    }

    #[test]
    fn instant_now_allowed_when_feeding_time_metric() {
        let src = r#"
            fn timed(tel: &Telemetry) {
                let started = std::time::Instant::now();
                work();
                tel.observe("time_epoch_seconds", started.elapsed().as_secs_f64());
            }
        "#;
        assert!(lint_file("crates/core/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn bench_crate_is_wallclock_allowlisted() {
        let src = "fn t() { let x = std::time::Instant::now(); }";
        assert!(lint_file("crates/bench/src/harness.rs", src).is_empty());
    }

    #[test]
    fn system_time_flagged_but_import_is_not() {
        let src = r#"
            use std::time::SystemTime;
            fn stamp() -> SystemTime { SystemTime::now() }
        "#;
        let f = lint_file("crates/features/src/extract.rs", src);
        assert!(f.iter().all(|x| x.rule == RULE_DETERMINISM_WALLCLOCK));
        // The `use` line is exempt; the two uses inside `stamp` are not.
        assert_eq!(f.len(), 2, "{f:?}");
    }

    // --- serving-no-panic -----------------------------------------------

    #[test]
    fn unwrap_and_panic_flagged_on_serving_path() {
        let src = r#"
            fn hot(v: &[f32]) -> f32 {
                let x = v.first().unwrap();
                if v.len() > 9 { panic!("too many"); }
                *x
            }
        "#;
        let f = lint_file("crates/core/src/serving.rs", src);
        assert_eq!(
            rules_of(&f),
            vec![RULE_SERVING_NO_PANIC, RULE_SERVING_NO_PANIC]
        );
    }

    #[test]
    fn direct_indexing_flagged_but_arrays_and_attrs_are_not() {
        let src = r#"
            #[derive(Debug)]
            struct S { xs: Vec<f32> }
            fn hot(s: &S, i: usize) -> f32 {
                let table = [1.0f32, 2.0];
                let v = vec![0.0f32; 4];
                s.xs[i]
            }
        "#;
        let f = lint_file("crates/features/src/online.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_SERVING_NO_PANIC]);
        assert!(f[0].msg.contains("indexing"));
    }

    #[test]
    fn get_based_access_is_clean() {
        let src = r#"
            fn hot(v: &[f32], i: usize) -> f32 { v.get(i).copied().unwrap_or(0.0) }
        "#;
        let f = lint_file("crates/features/src/feeds.rs", src);
        // `.unwrap_or` is not `.unwrap` — no finding.
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn serve_crate_is_in_no_panic_scope() {
        let src = r#"
            fn route(paths: &[String], i: usize) -> String {
                paths[i].clone()
            }
        "#;
        let f = lint_file("crates/serve/src/server.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_SERVING_NO_PANIC]);
    }

    #[test]
    fn serve_deadline_module_is_wallclock_exempt_but_not_panic_exempt() {
        let src = r#"
            fn remaining(at: std::time::Instant) -> std::time::Duration {
                at.saturating_duration_since(std::time::Instant::now())
            }
            fn bad(v: &[u8]) -> u8 { v.first().copied().unwrap() }
        "#;
        let f = lint_file("crates/serve/src/deadline.rs", src);
        // The Instant reads pass (this is the sanctioned module); the
        // unwrap is still a serving-no-panic finding.
        assert_eq!(rules_of(&f), vec![RULE_SERVING_NO_PANIC]);
    }

    #[test]
    fn serve_crate_outside_deadline_is_wallclock_scoped() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let f = lint_file("crates/serve/src/engine.rs", src);
        assert!(
            f.iter().any(|x| x.rule == RULE_DETERMINISM_WALLCLOCK),
            "{f:?}"
        );
    }

    #[test]
    fn unwrap_outside_serving_scope_ignored() {
        let src = "fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }";
        assert!(lint_file("crates/simdata/src/orders.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = r#"
            fn prod(v: &[f32]) -> f32 { v.iter().sum() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let v = vec![1.0f32]; assert_eq!(v[0].max(0.0), v[0]); v.first().unwrap(); }
            }
        "#;
        assert!(lint_file("crates/core/src/serving.rs", src).is_empty());
    }

    // --- arith-underflow ------------------------------------------------

    #[test]
    fn unsigned_subtraction_flagged_on_serving_path() {
        let src = "fn slot(t: u16, ts: u16) -> usize { (t - ts) as usize }";
        let f = lint_file("crates/features/src/online.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_ARITH_UNDERFLOW]);
    }

    #[test]
    fn saturating_and_checked_sub_are_clean() {
        let src = r#"
            fn slot(t: u16, ts: u16) -> usize {
                t.saturating_sub(ts) as usize + t.checked_sub(1).unwrap_or(0) as usize
            }
        "#;
        let f = lint_file("crates/features/src/feeds.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unary_minus_and_float_literals_are_not_flagged() {
        let src = r#"
            fn f(x: f32) -> f32 { x - 1.0 }
            fn g(x: f32) -> f32 { x - -2.5 }
            fn h(x: i32) -> i32 { -x }
            fn k(x: f64) -> f64 { x - f64::EPSILON }
        "#;
        let f = lint_file("crates/features/src/online.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn underflow_rule_scoped_to_serving_files() {
        let src = "fn f(a: u32, b: u32) -> u32 { a - b }";
        assert!(lint_file("crates/nn/src/matrix.rs", src).is_empty());
        assert_eq!(
            rules_of(&lint_file("crates/serve/src/engine.rs", src)),
            vec![RULE_ARITH_UNDERFLOW]
        );
    }

    #[test]
    fn underflow_finding_is_suppressible_with_reason() {
        let src = r#"
            fn f(a: u32, b: u32) -> u32 {
                // deepsd-lint: allow(arith-underflow, reason="a >= b guarded by the caller")
                a - b
            }
        "#;
        assert!(lint_file("crates/core/src/serving.rs", src).is_empty());
    }

    #[test]
    fn underflow_in_test_code_is_skipped() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f(a: u32, b: u32) -> u32 { a - b }
            }
        "#;
        assert!(lint_file("crates/features/src/online.rs", src).is_empty());
    }

    // --- float-eq -------------------------------------------------------

    #[test]
    fn float_literal_comparison_flagged_everywhere() {
        let src = "fn f(x: f32) -> bool { x == 1.0 }";
        let f = lint_file("crates/baselines/src/tree.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_FLOAT_EQ]);
    }

    #[test]
    fn float_const_comparison_flagged() {
        let src = "fn f(x: f64) -> bool { x != f64::INFINITY }";
        let f = lint_file("crates/core/src/metrics.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_FLOAT_EQ]);
    }

    #[test]
    fn integer_comparison_not_flagged() {
        let src = "fn f(x: usize) -> bool { x == 10 && x != 0 }";
        assert!(lint_file("crates/core/src/metrics.rs", src).is_empty());
    }

    // --- cast-truncate --------------------------------------------------

    #[test]
    fn narrowing_cast_flagged_in_scope() {
        let src = "fn idx(day: u32, t: u32) -> u16 { (day * 1440 + t) as u16 }";
        let f = lint_file("crates/simdata/src/types.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_CAST_TRUNCATE]);
    }

    #[test]
    fn narrowing_cast_ignored_outside_scope() {
        let src = "fn idx(day: u32) -> u16 { day as u16 }";
        assert!(lint_file("crates/nn/src/matrix.rs", src).is_empty());
    }

    // --- directives -----------------------------------------------------

    #[test]
    fn allow_directive_suppresses_next_line() {
        let src = r#"
            fn hot(v: &[f32], i: usize) -> f32 {
                // deepsd-lint: allow(serving-no-panic, reason="i is bounds-checked by the caller")
                v[i]
            }
        "#;
        assert!(lint_file("crates/core/src/serving.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_line() {
        let src = r#"
            fn hot(v: &[f32], i: usize) -> f32 {
                v[i] // deepsd-lint: allow(serving-no-panic, reason="i < v.len() by construction")
            }
        "#;
        assert!(lint_file("crates/core/src/serving.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = r#"
            fn hot(v: &[f32], i: usize) -> f32 {
                // deepsd-lint: allow(serving-no-panic)
                v[i]
            }
        "#;
        let f = lint_file("crates/core/src/serving.rs", src);
        assert!(f.iter().any(|x| x.rule == RULE_LINT_DIRECTIVE), "{f:?}");
        // The un-suppressed indexing finding must survive too.
        assert!(f.iter().any(|x| x.rule == RULE_SERVING_NO_PANIC));
    }

    #[test]
    fn directive_mentioned_mid_comment_is_not_parsed() {
        // Prose and doc examples that merely mention the syntax are not
        // directives: only comments that *start* with `deepsd-lint:`.
        let src = "//! example: // deepsd-lint: allow(rule, reason=\"…\")\nfn f() {}";
        assert!(lint_file("crates/core/src/serving.rs", src).is_empty());
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let src = "// deepsd-lint: allow(no-such-rule, reason=\"x\")\nfn f() {}";
        let f = lint_file("crates/core/src/serving.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_LINT_DIRECTIVE]);
    }

    #[test]
    fn allow_does_not_cover_other_rules() {
        let src = r#"
            fn hot(x: f32) -> bool {
                // deepsd-lint: allow(serving-no-panic, reason="not the right rule")
                x == 1.0
            }
        "#;
        let f = lint_file("crates/core/src/serving.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_FLOAT_EQ]);
    }

    // --- unsafe-scope ---------------------------------------------------

    #[test]
    fn unsafe_outside_sanctioned_files_is_flagged() {
        let src = r#"
            fn f(p: *const f32) -> f32 {
                unsafe { *p }
            }
        "#;
        let f = lint_file("crates/core/src/trainer.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_UNSAFE_SCOPE]);
    }

    #[test]
    fn unsafe_outside_sanctioned_files_cannot_be_suppressed() {
        let src = r#"
            fn f(p: *const f32) -> f32 {
                // deepsd-lint: allow(unsafe-scope, reason="nice try")
                unsafe { *p }
            }
        "#;
        let f = lint_file("crates/core/src/trainer.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_UNSAFE_SCOPE], "{f:?}");
    }

    #[test]
    fn unannotated_unsafe_in_kernels_is_flagged() {
        let src = r#"
            fn f(p: *const f32) -> f32 {
                unsafe { *p }
            }
        "#;
        let f = lint_file("crates/nn/src/kernels.rs", src);
        assert_eq!(rules_of(&f), vec![RULE_UNSAFE_SCOPE]);
    }

    #[test]
    fn annotated_unsafe_in_kernels_is_clean() {
        let src = r#"
            fn f(p: *const f32) -> f32 {
                // deepsd-lint: allow(unsafe-scope, reason="caller guarantees p is in bounds")
                unsafe { *p }
            }
        "#;
        let f = lint_file("crates/nn/src/kernels.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotated_unsafe_fn_in_shard_is_clean() {
        let src = r#"
            // deepsd-lint: allow(unsafe-scope, reason="lifetime-only transmute, joined before expiry")
            unsafe fn erase(x: u32) -> u32 { x }
        "#;
        let f = lint_file("crates/nn/src/shard.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_in_test_code_is_skipped() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn f(p: *const f32) -> f32 {
                    unsafe { *p }
                }
            }
        "#;
        let f = lint_file("crates/core/src/trainer.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_flagged() {
        let src = r#"
            // unsafe is discussed here but never written
            fn f() -> &'static str { "unsafe" }
        "#;
        let f = lint_file("crates/core/src/trainer.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    // --- determinism of the linter itself -------------------------------

    #[test]
    fn output_is_deterministic() {
        let src = r#"
            fn hot(v: &[f32], m: &std::collections::HashMap<u32, f32>) -> f32 {
                let t = std::time::Instant::now();
                let a = v[0];
                let b = v.first().unwrap();
                if a == 1.0 { panic!("x") }
                a + b
            }
        "#;
        let a = lint_file("crates/core/src/serving.rs", src);
        let b = lint_file("crates/core/src/serving.rs", src);
        assert_eq!(a, b);
        assert!(a.len() >= 4, "expected several findings, got {a:?}");
        let lines: Vec<u32> = a.iter().map(|f| f.line).collect();
        let mut sorted_lines = lines.clone();
        sorted_lines.sort_unstable();
        assert_eq!(lines, sorted_lines, "findings must come out in line order");
    }
}
