//! The three interprocedural analyses over the workspace call graph
//! (DESIGN.md §4.10): panic-reachability from serving entry points,
//! determinism taint into the deterministic sinks, and lock-order
//! conflict detection.
//!
//! Findings feed the same shrink-only baseline ratchet as the per-file
//! rules, keyed `(rule, file)`. Every walk is deterministic: entries,
//! neighbours and result sets are sorted, so `--check` output is
//! byte-identical across runs on the same tree.

use crate::graph::{Graph, NodeId, ResolvedEvent};
use crate::parse::TaintKind;
use crate::rules::{
    Finding, RULE_DETERMINISM_MAP_ITER, RULE_DETERMINISM_TAINT, RULE_DETERMINISM_WALLCLOCK,
    RULE_LOCK_ORDER, RULE_PANIC_REACH, RULE_SERVING_NO_PANIC,
};
use std::collections::{BTreeMap, BTreeSet};

/// Crates that never link into the serving or training binaries as
/// libraries of the hot path — the lint tool itself and the bench/load
/// harnesses. Their fns stay out of the graph so name collisions
/// (`main`, `run`, …) cannot fabricate reachability.
pub const GRAPH_EXCLUDED_CRATES: &[&str] = &["bench", "lint"];

/// Serving entry points, in reporting priority order: a panic fn
/// reachable from several groups is attributed to the earliest.
const ENTRY_GROUPS: &[(&str, EntrySpec)] = &[
    ("serve", EntrySpec::FilePrefix("crates/serve/src/")),
    (
        "online",
        EntrySpec::Named(
            "crates/core/src/serving.rs",
            &[
                "observe",
                "observe_all",
                "predict_all",
                "predict_all_report",
                "predict_area",
            ],
        ),
    ),
    (
        "continual",
        EntrySpec::Named(
            "crates/core/src/continual.rs",
            &["ingest", "ingest_one", "run_round"],
        ),
    ),
];

/// Deterministic sinks for the taint analysis: functions whose
/// behaviour must be a pure function of their inputs.
const TAINT_SINKS: &[(&str, &str, &str)] = &[
    (
        "telemetry snapshot",
        "crates/core/src/telemetry.rs",
        "to_json_without_timings",
    ),
    (
        "trainer epoch loop",
        "crates/core/src/trainer.rs",
        "train_ensemble",
    ),
    (
        "continual promotion decision",
        "crates/core/src/continual.rs",
        "run_round",
    ),
];

enum EntrySpec {
    /// Every fn in files under this prefix.
    FilePrefix(&'static str),
    /// Named fns in one file.
    Named(&'static str, &'static [&'static str]),
}

fn entry_nodes(g: &Graph, spec: &EntrySpec) -> Vec<NodeId> {
    match spec {
        EntrySpec::FilePrefix(p) => g
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file.starts_with(p))
            .map(|(i, _)| i)
            .collect(),
        EntrySpec::Named(file, names) => g
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == *file && names.contains(&f.name.as_str()))
            .map(|(i, _)| i)
            .collect(),
    }
}

/// Runs all three analyses and returns their findings (unsorted; the
/// caller merges them with the per-file rule findings and sorts).
pub fn run(g: &Graph) -> Vec<Finding> {
    let mut findings = Vec::new();
    panic_reach(g, &mut findings);
    determinism_taint(g, &mut findings);
    lock_order(g, &mut findings);
    findings
}

/// Panic sites in `f` that survive site-level audits. A site-level
/// `allow(serving-no-panic)` also sanitizes panic-reach: the site was
/// already audited as unable to fire.
fn live_panic_sites(g: &Graph, node: NodeId) -> Vec<&crate::parse::PanicSite> {
    let f = &g.fns[node];
    f.panics
        .iter()
        .filter(|s| {
            !g.is_allowed(RULE_PANIC_REACH, &f.file, s.line)
                && !g.is_allowed(RULE_SERVING_NO_PANIC, &f.file, s.line)
        })
        .collect()
}

/// (1) Panic-reachability: from each entry group, walk the call graph
/// and report every reachable fn that still contains an unaudited
/// panic site, with the shortest call chain from the nearest entry.
fn panic_reach(g: &Graph, out: &mut Vec<Finding>) {
    // Per-group BFS, in priority order; first group to reach a node
    // claims it.
    let mut claimed: BTreeMap<NodeId, (&str, Vec<NodeId>)> = BTreeMap::new();
    let mut reached_by: BTreeMap<NodeId, Vec<&str>> = BTreeMap::new();
    for (group, spec) in ENTRY_GROUPS {
        let entries = entry_nodes(g, spec);
        if entries.is_empty() {
            continue;
        }
        let pred = g.bfs(&entries, false);
        for (&node, _) in pred.iter() {
            reached_by.entry(node).or_default().push(group);
            claimed
                .entry(node)
                .or_insert_with(|| (group, g.chain(&pred, node)));
        }
    }

    for (&node, (group, chain)) in &claimed {
        let f = &g.fns[node];
        let sites = live_panic_sites(g, node);
        if sites.is_empty() {
            continue;
        }
        // Fn-level audit: an allow on the line of (or above) the fn
        // covers every site in it.
        if g.is_allowed(RULE_PANIC_REACH, &f.file, f.line) {
            continue;
        }
        let first = sites[0];
        let groups = reached_by
            .get(&node)
            .map(|v| v.join("+"))
            .unwrap_or_default();
        out.push(Finding {
            rule: RULE_PANIC_REACH,
            path: f.file.clone(),
            line: f.line,
            msg: format!(
                "`{}` has {} panic site(s) ({} at line {}) reachable from {} entry points [{}]: {}",
                f.qual_name(),
                sites.len(),
                first.what,
                first.line,
                group,
                groups,
                g.render_chain(chain),
            ),
        });
    }
}

/// Taint sites in `f` that survive the built-in sanitizers and
/// site-level audits. Wall-clock reads in a fn that publishes a
/// `"time_…"` metric are sanctioned (the timing namespace is excluded
/// from the deterministic snapshot), and site-level allows for the
/// per-file determinism rules carry over — the site was already
/// audited.
fn live_taint_sites(g: &Graph, node: NodeId) -> Vec<&crate::parse::TaintSite> {
    let f = &g.fns[node];
    f.taints
        .iter()
        .filter(|s| {
            if s.kind == TaintKind::WallClock && f.has_time_metric {
                return false;
            }
            let carried = match s.kind {
                TaintKind::WallClock => RULE_DETERMINISM_WALLCLOCK,
                TaintKind::MapIter => RULE_DETERMINISM_MAP_ITER,
                TaintKind::RandomState | TaintKind::EnvRead => RULE_DETERMINISM_TAINT,
            };
            !g.is_allowed(RULE_DETERMINISM_TAINT, &f.file, s.line)
                && !g.is_allowed(carried, &f.file, s.line)
        })
        .collect()
}

/// (2) Determinism taint: from each deterministic sink, walk the call
/// graph; any reachable fn with a live taint source makes the sink's
/// output depend on wall-clock, hash order or the environment.
fn determinism_taint(g: &Graph, out: &mut Vec<Finding>) {
    // node → (sink names reaching it, shortest chain from first sink)
    let mut tainted: BTreeMap<NodeId, (Vec<&str>, Vec<NodeId>)> = BTreeMap::new();
    for (sink_name, file, fn_name) in TAINT_SINKS {
        let sinks = g.find(file, None, fn_name);
        if sinks.is_empty() {
            continue;
        }
        let pred = g.bfs(&sinks, false);
        for (&node, _) in pred.iter() {
            let entry = tainted
                .entry(node)
                .or_insert_with(|| (Vec::new(), g.chain(&pred, node)));
            entry.0.push(sink_name);
        }
    }

    for (&node, (sink_names, chain)) in &tainted {
        let f = &g.fns[node];
        let sites = live_taint_sites(g, node);
        if sites.is_empty() {
            continue;
        }
        if g.is_allowed(RULE_DETERMINISM_TAINT, &f.file, f.line) {
            continue;
        }
        let first = sites[0];
        out.push(Finding {
            rule: RULE_DETERMINISM_TAINT,
            path: f.file.clone(),
            line: first.line,
            msg: format!(
                "`{}` reads `{}` (line {}) and is reachable from deterministic sink(s) [{}]: {}",
                f.qual_name(),
                first.what,
                first.line,
                sink_names.join(", "),
                g.render_chain(chain),
            ),
        });
    }
}

/// (3) Lock-order analysis. Per fn, the lexical order of lock
/// acquisitions and calls yields ordered pairs `(A, B)` — `B` acquired
/// while `A` may still be held (guards are over-approximated as held to
/// the end of the fn; locks acquired inside a callee are assumed
/// released when it returns unless the callee's own pairs say
/// otherwise). Two fns exhibiting the same two locks in opposite
/// orders can deadlock under concurrency.
fn lock_order(g: &Graph, out: &mut Vec<Finding>) {
    let n = g.fns.len();

    // Fixed point: transitive set of locks each fn can acquire.
    let mut acquired: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for (id, evs) in g.events.iter().enumerate() {
        for ev in evs {
            if let ResolvedEvent::Lock { lock, .. } = ev {
                acquired[id].insert(lock.clone());
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            for ev in &g.events[id] {
                let ResolvedEvent::Call { targets, .. } = ev else {
                    continue;
                };
                for &t in targets {
                    if !acquired[t].is_empty() {
                        let add: Vec<String> = acquired[t]
                            .iter()
                            .filter(|l| !acquired[id].contains(*l))
                            .cloned()
                            .collect();
                        if !add.is_empty() {
                            acquired[id].extend(add);
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // Local ordered pairs per fn: (A, B, line of B's acquisition).
    let mut pair_holders: BTreeMap<(String, String), Vec<(NodeId, u32)>> = BTreeMap::new();
    for id in 0..n {
        let mut held: Vec<(String, u32)> = Vec::new();
        let mut local: BTreeSet<(String, String, u32)> = BTreeSet::new();
        for ev in &g.events[id] {
            match ev {
                ResolvedEvent::Lock { lock, line } => {
                    for (a, _) in &held {
                        if a != lock {
                            local.insert((a.clone(), lock.clone(), *line));
                        }
                    }
                    held.push((lock.clone(), *line));
                }
                ResolvedEvent::Call { targets, line } => {
                    if held.is_empty() {
                        continue;
                    }
                    for &t in targets {
                        for b in &acquired[t] {
                            for (a, _) in &held {
                                if a != b {
                                    local.insert((a.clone(), b.clone(), *line));
                                }
                            }
                        }
                    }
                }
            }
        }
        for (a, b, line) in local {
            pair_holders.entry((a, b)).or_default().push((id, line));
        }
    }

    // Conflicts: both (A, B) and (B, A) exist with A < B.
    for ((a, b), holders) in &pair_holders {
        if a >= b {
            continue;
        }
        let Some(rev) = pair_holders.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let (fwd_node, fwd_line) = holders[0];
        let (rev_node, rev_line) = rev[0];
        let ff = &g.fns[fwd_node];
        let rf = &g.fns[rev_node];
        // Anchor on the lexicographically first (file, line) of the two
        // representatives so the finding is stable and suppressible.
        let (anchor, other, aline, oline) = if (&ff.file, fwd_line) <= (&rf.file, rev_line) {
            (ff, rf, fwd_line, rev_line)
        } else {
            (rf, ff, rev_line, fwd_line)
        };
        if g.is_allowed(RULE_LOCK_ORDER, &anchor.file, aline)
            || g.is_allowed(RULE_LOCK_ORDER, &anchor.file, anchor.line)
        {
            continue;
        }
        out.push(Finding {
            rule: RULE_LOCK_ORDER,
            path: anchor.file.clone(),
            line: aline,
            msg: format!(
                "locks `{a}` and `{b}` are acquired in opposite orders: `{}` takes {a}→{b} (line {fwd_line}), `{}` takes {b}→{a} (line {rev_line}) — a cross-thread deadlock window ({}:{})",
                ff.qual_name(),
                rf.qual_name(),
                other.file,
                oline,
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::parse::parse_file;

    fn analyse(files: &[(&str, &str)]) -> Vec<Finding> {
        let g = Graph::build(files.iter().map(|(p, s)| parse_file(p, s)).collect());
        let mut f = run(&g);
        f.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        f
    }

    #[test]
    fn cross_crate_panic_is_reachable_from_serve() {
        let f = analyse(&[
            (
                "crates/serve/src/server.rs",
                "pub fn handle() { deepsd::helper(); }",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn helper() { inner(); }\nfn inner(v: &[u8]) -> u8 { v.first().copied().unwrap() }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_PANIC_REACH);
        assert_eq!(f[0].path, "crates/core/src/lib.rs");
        assert!(f[0].msg.contains("handle → helper → inner"), "{}", f[0].msg);
        assert!(f[0].msg.contains("[serve]"), "{}", f[0].msg);
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let f = analyse(&[
            ("crates/serve/src/server.rs", "pub fn handle() {}"),
            (
                "crates/simdata/src/gen.rs",
                "pub fn offline(v: &[u8]) -> u8 { v[0] }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fn_level_allow_suppresses_panic_reach() {
        let f = analyse(&[
            (
                "crates/serve/src/server.rs",
                "pub fn handle() { deepsd_nn::kernel(); }",
            ),
            (
                "crates/nn/src/k.rs",
                "// deepsd-lint: allow(panic-reach, reason=\"indices bounded by construction\")\npub fn kernel(v: &[u8]) -> u8 { v[0] }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn site_level_serving_allow_carries_over() {
        let f = analyse(&[
            (
                "crates/serve/src/server.rs",
                "pub fn handle() { deepsd::helper(); }",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn helper(v: &[u8]) -> u8 {\n    // deepsd-lint: allow(serving-no-panic, reason=\"len checked by caller\")\n    v[0]\n}",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn taint_reaching_promotion_sink_is_flagged() {
        let f = analyse(&[(
            "crates/core/src/continual.rs",
            r#"
            impl ShadowTrainer {
                fn run_round(&mut self) { seed_from_clock(); }
            }
            fn seed_from_clock() -> u64 {
                let t = std::time::Instant::now();
                0
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_DETERMINISM_TAINT);
        assert!(
            f[0].msg.contains("continual promotion decision"),
            "{}",
            f[0].msg
        );
        assert!(f[0].msg.contains("Instant::now"), "{}", f[0].msg);
    }

    #[test]
    fn time_metric_sanitizes_wallclock_taint() {
        let f = analyse(&[(
            "crates/core/src/trainer.rs",
            r#"
            pub fn train_ensemble() { timed(); }
            fn timed() {
                let t = std::time::Instant::now();
                observe("time_epoch_seconds", 1.0);
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn env_read_in_trainer_is_tainted_until_allowed() {
        let src_bad = r#"
            pub fn train_ensemble() { prof(); }
            fn prof() -> bool { std::env::var("X").is_ok() }
        "#;
        let f = analyse(&[("crates/core/src/trainer.rs", src_bad)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_DETERMINISM_TAINT);

        let src_ok = r#"
            pub fn train_ensemble() { prof(); }
            fn prof() -> bool {
                // deepsd-lint: allow(determinism-taint, reason="gates eprintln profiling only")
                std::env::var("X").is_ok()
            }
        "#;
        let f = analyse(&[("crates/core/src/trainer.rs", src_ok)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn map_iteration_taints_the_snapshot_sink() {
        let f = analyse(&[(
            "crates/core/src/telemetry.rs",
            r#"
            use std::collections::HashMap;
            pub fn to_json_without_timings(m: &HashMap<String, u64>) -> String {
                let mut s = String::new();
                for (k, v) in m.iter() { s.push_str(k); }
                s
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_DETERMINISM_TAINT);
    }

    #[test]
    fn opposite_lock_orders_conflict() {
        let f = analyse(&[(
            "crates/serve/src/queue.rs",
            r#"
            use std::sync::Mutex;
            struct Q { jobs: Mutex<u32>, stats: Mutex<u32> }
            impl Q {
                fn a(&self) {
                    let j = self.jobs.lock();
                    let s = self.stats.lock();
                }
                fn b(&self) {
                    let s = self.stats.lock();
                    let j = self.jobs.lock();
                }
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
        assert!(f[0].msg.contains("jobs"), "{}", f[0].msg);
        assert!(f[0].msg.contains("stats"), "{}", f[0].msg);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let f = analyse(&[(
            "crates/serve/src/queue.rs",
            r#"
            use std::sync::Mutex;
            struct Q { jobs: Mutex<u32>, stats: Mutex<u32> }
            impl Q {
                fn a(&self) { let j = self.jobs.lock(); let s = self.stats.lock(); }
                fn b(&self) { let j = self.jobs.lock(); let s = self.stats.lock(); }
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn interprocedural_lock_order_via_callee() {
        // `a` holds jobs and calls `take_stats`; `b` holds stats and
        // calls `take_jobs` — the conflict only exists through the graph.
        let f = analyse(&[(
            "crates/serve/src/queue.rs",
            r#"
            use std::sync::Mutex;
            struct Q { jobs: Mutex<u32>, stats: Mutex<u32> }
            impl Q {
                fn a(&self) { let j = self.jobs.lock(); self.take_stats(); }
                fn b(&self) { let s = self.stats.lock(); self.take_jobs(); }
                fn take_stats(&self) { let s = self.stats.lock(); }
                fn take_jobs(&self) { let j = self.jobs.lock(); }
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
    }

    #[test]
    fn lock_order_allow_suppresses() {
        let f = analyse(&[(
            "crates/serve/src/queue.rs",
            r#"
            use std::sync::Mutex;
            struct Q { jobs: Mutex<u32>, stats: Mutex<u32> }
            impl Q {
                fn a(&self) {
                    let j = self.jobs.lock();
                    // deepsd-lint: allow(lock-order, reason="b only runs during single-threaded drain")
                    let s = self.stats.lock();
                }
                fn b(&self) { let s = self.stats.lock(); let j = self.jobs.lock(); }
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn analyses_are_deterministic() {
        let files = &[
            (
                "crates/serve/src/server.rs",
                "pub fn handle() { deepsd::helper(); }",
            ),
            (
                "crates/core/src/lib.rs",
                "pub fn helper(v: &[u8]) -> u8 { v[0] }",
            ),
        ];
        let a = analyse(files);
        let b = analyse(files);
        assert_eq!(a, b);
    }
}
