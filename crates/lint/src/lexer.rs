//! A lightweight Rust lexer for the invariant checker.
//!
//! The rules in [`crate::rules`] match token shapes (`.unwrap(`,
//! `Instant::now`, `ident[`), so the lexer's only hard requirements are
//! the ones a plain text grep gets wrong: comments, string literals,
//! char literals and raw strings must never leak their contents into the
//! token stream, and lifetimes must not be confused with char literals.
//! No full parse is attempted.
//!
//! Comments are returned separately so the allow-directive syntax
//! (`// deepsd-lint: allow(rule, reason="…")`) can be recognised.

/// Token class. The text of string literals is preserved (the
/// wallclock rule inspects metric-name literals for the `time_`
/// namespace) but rules must treat it as opaque data, never as code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; common two-character operators (`==`, `!=`, `::`,
    /// `->`, `=>`, `..`) are fused into one token.
    Punct,
    /// String literal (regular, raw, byte or C string). `text` holds the
    /// unescaped-as-written inner bytes, without delimiters.
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Numeric literal, suffix included (`1_000u32`, `2.5e-3`, `1.0f32`).
    Num,
    /// Lifetime (`'a`) — kept so rules never misread `'a` as a char.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// True when this numeric literal is a float (`1.5`, `2e3`, `1f32`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Num {
            return false;
        }
        let t = &self.text;
        if t.ends_with("f32") || t.ends_with("f64") {
            return true;
        }
        // Hex/octal/binary literals contain letters but are integers.
        if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
            return false;
        }
        // Strip an integer-suffix tail (`7usize`, `3u16`, `9i64`) before
        // looking for an exponent: the `e` in `usize` is not an exponent.
        // A real exponent (`1e9`, `2E-3`) is always followed by a digit,
        // so it survives the trim.
        let core = t.trim_end_matches(|c: char| c.is_ascii_alphabetic());
        // `1.0`, `1.`, `1e3`, `1.5e-3` — but not `1..2` (lexed as Num `1`
        // then Punct `..`) and not tuple access (`.0` never starts a Num).
        core.contains('.') || core.contains('e') || core.contains('E')
    }
}

/// A comment, returned alongside the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated literals and comments are tolerated (the
/// rest of the file is swallowed into the open literal) — the linter
/// must never panic on weird input, and `rustc` will report the real
/// error anyway.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `idx` over `n` bytes, counting newlines into `line`.
    fn advance(b: &[u8], idx: &mut usize, line: &mut u32, n: usize) {
        for _ in 0..n {
            if *idx < b.len() {
                if b[*idx] == b'\n' {
                    *line += 1;
                }
                *idx += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        let start_line = line;

        // Whitespace.
        if c.is_ascii_whitespace() {
            advance(b, &mut i, &mut line, 1);
            continue;
        }

        // Line comment (also `///` docs — same handling).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let mut j = i + 2;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: src[i + 2..j].to_string(),
                line: start_line,
            });
            let n = j - i;
            advance(b, &mut i, &mut line, n);
            continue;
        }

        // Block comment, nested per Rust rules.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if j + 1 < b.len() && b[j] == b'/' && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if j + 1 < b.len() && b[j] == b'*' && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let inner_end = j.saturating_sub(2).max(i + 2);
            out.comments.push(Comment {
                text: src[i + 2..inner_end].to_string(),
                line: start_line,
            });
            let n = j - i;
            advance(b, &mut i, &mut line, n);
            continue;
        }

        // Raw strings: r"…", r#"…"#, and byte/C variants br#"…"#, cr"…".
        if let Some((len, inner)) = raw_string_at(src, i) {
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: inner,
                line: start_line,
            });
            let n = len;
            advance(b, &mut i, &mut line, n);
            continue;
        }

        // Plain and byte/C strings: "…", b"…", c"…".
        if c == b'"' || ((c == b'b' || c == b'c') && i + 1 < b.len() && b[i + 1] == b'"') {
            let open = if c == b'"' { i } else { i + 1 };
            let mut j = open + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => break,
                    _ => j += 1,
                }
            }
            let end = j.min(b.len());
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: src[open + 1..end.min(src.len())].to_string(),
                line: start_line,
            });
            let n = (end + 1).min(b.len()) - i;
            advance(b, &mut i, &mut line, n);
            continue;
        }

        // Lifetime vs char literal. After a quote: an escape or a body
        // longer than one scalar followed by `'` is a char; `'ident` with
        // no closing quote is a lifetime.
        if c == b'\'' {
            if let Some(len) = char_literal_len(src, i) {
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: start_line,
                });
                let n = len;
                advance(b, &mut i, &mut line, n);
            } else {
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[i + 1..j].to_string(),
                    line: start_line,
                });
                let n = j - i;
                advance(b, &mut i, &mut line, n);
            }
            continue;
        }

        // Numbers (identifiers starting with a digit do not exist).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() {
                let d = b[j];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    j += 1;
                } else if d == b'.' {
                    // `1..2` is Num Punct Num; `1.5` continues the number.
                    if j + 1 < b.len() && b[j + 1] == b'.' {
                        break;
                    }
                    // `1.method()` — treat the dot as punctuation.
                    if j + 1 < b.len() && (b[j + 1].is_ascii_alphabetic() || b[j + 1] == b'_') {
                        break;
                    }
                    j += 1;
                } else if (d == b'+' || d == b'-')
                    && (b[j - 1] == b'e' || b[j - 1] == b'E')
                    && src[i..j].chars().all(|ch| ch != 'x')
                {
                    // Exponent sign: `1.5e-3`.
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: src[i..j].to_string(),
                line: start_line,
            });
            let n = j - i;
            advance(b, &mut i, &mut line, n);
            continue;
        }

        // Identifiers and keywords (also `r#ident` raw identifiers).
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut s = i;
            if c == b'r' && i + 1 < b.len() && b[i + 1] == b'#' {
                // Only a raw identifier if followed by an ident char
                // (raw strings were handled above).
                if i + 2 < b.len() && (b[i + 2].is_ascii_alphanumeric() || b[i + 2] == b'_') {
                    s = i + 2;
                }
            }
            let mut j = s;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            // Raw identifiers keep their `r#` prefix: `r#fn` is an
            // ordinary identifier and must never satisfy
            // `is_ident("fn")` — a stripped prefix would let it spoof a
            // keyword in the item parser.
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: src[i..j].to_string(),
                line: start_line,
            });
            let n = j - i;
            advance(b, &mut i, &mut line, n);
            continue;
        }

        // Punctuation; fuse the two-character operators the rules use.
        let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
        let mut fused = matches!(
            two,
            "==" | "!=" | "<=" | ">=" | "::" | "->" | "=>" | ".." | "&&" | "||"
        );
        // `>>=` / `<<=` (shift-assign, or `Vec<Vec<u8>>=` closing nested
        // generics) must not fabricate a `>=` / `<=` comparison out of
        // their last two characters: after a same-direction angle
        // bracket, the `=` is its own token.
        if fused && (two == ">=" || two == "<=") && i > 0 && b[i - 1] == b[i] {
            fused = false;
        }
        let len = if fused { 2 } else { 1 };
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: src[i..i + len].to_string(),
            line: start_line,
        });
        advance(b, &mut i, &mut line, len);
    }
    out
}

/// If a raw string starts at `i`, returns `(total_len, inner_text)`.
fn raw_string_at(src: &str, i: usize) -> Option<(usize, String)> {
    let b = src.as_bytes();
    let mut j = i;
    // Optional `b` / `c` prefix before `r`.
    if j < b.len() && (b[j] == b'b' || b[j] == b'c') {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None;
    }
    let body_start = j + 1;
    let closer: String = format!("\"{}", "#".repeat(hashes));
    match src[body_start..].find(&closer) {
        Some(off) => {
            let body_end = body_start + off;
            Some((
                body_end + closer.len() - i,
                src[body_start..body_end].to_string(),
            ))
        }
        None => Some((src.len() - i, src[body_start..].to_string())),
    }
}

/// If a char literal starts at `i` (a `'`), returns its total length.
/// Returns `None` for lifetimes.
fn char_literal_len(src: &str, i: usize) -> Option<usize> {
    let b = src.as_bytes();
    debug_assert_eq!(b[i], b'\'');
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escape: skip to the closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return Some((j + 1).min(b.len()) - i);
    }
    // One scalar (possibly multi-byte) followed by a closing quote.
    let ch_len = src[j..].chars().next().map_or(1, char::len_utf8);
    let after = j + ch_len;
    if after < b.len() && b[after] == b'\'' {
        return Some(after + 1 - i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // calls unwrap() in a comment
            /* block with .unwrap() and /* nested panic!() */ still comment */
            let s = "contains .unwrap() and panic!";
            let r = r#"raw with HashMap.iter()"#;
            let c = 'x';
            let esc = '\'';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn float_literal_detection() {
        let lexed = lex("a == 1.0; b == 2; c != 2.5e-3; d == 0x10; e == 1f32; f == 3e8;");
        let nums: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .collect();
        let flags: Vec<bool> = nums.iter().map(|t| t.is_float_literal()).collect();
        assert_eq!(flags, vec![true, false, true, false, true, true]);
    }

    #[test]
    fn range_is_not_a_float() {
        let lexed = lex("for i in 0..10 { v[i] = 1.5; }");
        let nums: Vec<String> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n  c";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn two_char_operators_are_fused() {
        let lexed = lex("a == b != c :: d .. e");
        let puncts: Vec<String> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", ".."]);
    }

    #[test]
    fn shift_assign_does_not_fabricate_a_comparison() {
        // `Vec<Vec<u8>>= x` (or `a >>= 2`): the `>>=` tail must lex as
        // `>` `>` `=`, never `>` `>=` — a fused `>=` here fabricates a
        // comparison that confuses generic tracking and float-eq.
        let lexed = lex("let v: Vec<Vec<u8>>= x; a <<= 2;");
        let puncts: Vec<String> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct && (t.text.contains('>') || t.text.contains('<')))
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["<", "<", ">", ">", "<", "<"]);
        // Real comparisons still fuse.
        let lexed = lex("if a >= b && c <= d {}");
        assert!(lexed.tokens.iter().any(|t| t.is_punct(">=")));
        assert!(lexed.tokens.iter().any(|t| t.is_punct("<=")));
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        let lexed = lex("let r#type = 1; let r#fn = 2;");
        let idents: Vec<String> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text.starts_with("r#"))
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(idents, vec!["r#type", "r#fn"]);
        // `r#fn` must never satisfy the keyword check the item parser
        // uses to find function items.
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn exponent_floats_and_suffixed_integers_are_told_apart() {
        let lexed = lex(
            "const A: f64 = 1e9; const B: f64 = 2E-3; const N: usize = 7usize; let m = 4096u64;",
        );
        let nums: Vec<(String, bool)> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| (t.text.clone(), t.is_float_literal()))
            .collect();
        assert_eq!(
            nums,
            vec![
                ("1e9".to_string(), true),
                ("2E-3".to_string(), true),
                ("7usize".to_string(), false),
                ("4096u64".to_string(), false),
            ]
        );
    }

    #[test]
    fn unterminated_string_is_tolerated() {
        let lexed = lex("let s = \"never closed");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Str));
    }
}
