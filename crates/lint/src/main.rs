//! `deepsd-lint` — workspace invariant checker (DESIGN.md §4.5, §4.10).
//!
//! Walks every `crates/*/src/**/*.rs` file and enforces the repo's
//! determinism, panic-safety and telemetry-hygiene invariants as named
//! rules, ratcheted against the committed `lint-baseline.txt`. On top
//! of the per-file token rules, an item-level parser builds the
//! workspace call graph and runs three interprocedural analyses:
//! panic-reachability from the serving entry points, determinism taint
//! into the deterministic sinks, and lock-order conflict detection.
//!
//! ```text
//! cargo run -p deepsd-lint -- --check            # CI gate (exit 1 on regression)
//! cargo run -p deepsd-lint -- --check --json     # same, machine-readable findings
//! cargo run -p deepsd-lint -- --list             # print every live finding
//! cargo run -p deepsd-lint -- --update-baseline  # rewrite lint-baseline.txt
//! cargo run -p deepsd-lint -- --explain RULE     # what a rule means and how to fix it
//! ```
//!
//! Output is byte-identical across runs on the same tree: files are
//! walked in sorted order, graph walks are BFS over sorted adjacency,
//! and findings are reported in (path, line, rule) order.

mod analyses;
mod baseline;
mod graph;
mod lexer;
mod parse;
mod rules;

use baseline::Baseline;
use rules::Finding;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.txt";

const USAGE: &str = "\
deepsd-lint — DeepSD workspace invariant checker

USAGE:
    deepsd-lint [--root DIR] [--json] (--check | --list | --update-baseline | --list-rules | --explain RULE)

MODES:
    --check            exit 1 if any finding exceeds lint-baseline.txt (CI gate)
    --list             print every live finding
    --update-baseline  rewrite lint-baseline.txt from the current tree
    --list-rules       print the rule names
    --explain RULE     print what RULE means and how to fix a finding

OPTIONS:
    --root DIR         workspace root (default: nearest ancestor with a crates/ dir)
    --json             machine-readable output for --check / --list (stable field order)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("deepsd-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let mut mode: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut explain_rule: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" | "--list" | "--update-baseline" | "--list-rules" => {
                if mode.is_some() {
                    return Err("more than one mode given".to_string());
                }
                mode = Some(match arg.as_str() {
                    "--check" => "check",
                    "--list" => "list",
                    "--update-baseline" => "update",
                    _ => "rules",
                });
            }
            "--explain" => {
                if mode.is_some() {
                    return Err("more than one mode given".to_string());
                }
                mode = Some("explain");
                let rule = it.next().ok_or("--explain needs a rule name")?;
                explain_rule = Some(rule.clone());
            }
            "--json" => json = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    let Some(mode) = mode else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };

    if mode == "rules" {
        for rule in rules::RULES {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    if mode == "explain" {
        let rule = explain_rule.unwrap_or_default();
        match rules::explain(&rule) {
            Some(text) => {
                println!("{rule}\n");
                println!("{text}");
                return Ok(ExitCode::SUCCESS);
            }
            None => {
                return Err(format!(
                    "unknown rule '{rule}'; run --list-rules for the rule names"
                ))
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let findings = lint_workspace(&root)?;

    match mode {
        "list" => {
            if json {
                print!("{}", render_json(&findings, None));
            } else {
                for f in &findings {
                    println!("{}", f.render());
                }
                println!("{} finding(s)", findings.len());
            }
            Ok(ExitCode::SUCCESS)
        }
        "update" => {
            let text = Baseline::from_findings(&findings).render();
            std::fs::write(root.join(BASELINE_FILE), &text)
                .map_err(|e| format!("writing {BASELINE_FILE}: {e}"))?;
            println!(
                "wrote {BASELINE_FILE}: {} finding(s) across {} (rule, file) pair(s)",
                findings.len(),
                Baseline::from_findings(&findings).counts.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let base_path = root.join(BASELINE_FILE);
            let base = match std::fs::read_to_string(&base_path) {
                Ok(text) => Baseline::parse(&text)?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
                Err(e) => return Err(format!("reading {BASELINE_FILE}: {e}")),
            };
            let live = Baseline::from_findings(&findings);
            let (over, stale) = base.check(&live);
            if json {
                print!("{}", render_json(&findings, Some((&over, &stale))));
                return Ok(if over.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            for ((rule, path), n, _) in &stale {
                println!("note: baseline for {rule} in {path} can shrink to {n}");
            }
            if over.is_empty() {
                println!(
                    "deepsd-lint: clean ({} finding(s), all within baseline)",
                    findings.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            println!("deepsd-lint: {} regression(s) over baseline:", over.len());
            for ((rule, path), n, allowed) in &over {
                println!("  {rule} in {path}: {n} finding(s), baseline allows {allowed}");
                for f in findings
                    .iter()
                    .filter(|f| f.rule == rule && &f.path == path)
                {
                    // Canonical one-line form — the GitHub problem
                    // matcher keys on it to annotate PR diffs.
                    println!("    {}", f.render());
                }
            }
            println!(
                "fix the findings, add `// deepsd-lint: allow(rule, reason=\"…\")`, run \
                 `deepsd-lint --explain <rule>` for what a rule means, or run \
                 `cargo run -p deepsd-lint -- --update-baseline` and justify the growth in review"
            );
            Ok(ExitCode::FAILURE)
        }
        _ => unreachable!("mode is validated above"),
    }
}

/// Nearest ancestor of the current directory containing `crates/`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root with a crates/ directory found; use --root".to_string());
        }
    }
}

/// Lints every `crates/*/src/**/*.rs` file under `root`: per-file token
/// rules on every file, then the interprocedural analyses over the
/// workspace call graph. Findings come back sorted by (path, line,
/// rule).
fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let crates =
        sorted_dir(&crates_dir).map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut parsed = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        findings.extend(rules::lint_file(&rel, &src));
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        if !analyses::GRAPH_EXCLUDED_CRATES.contains(&krate) {
            parsed.push(parse::parse_file(&rel, &src));
        }
    }

    let graph = graph::Graph::build_with_deps(parsed, &crate_deps(root)?);
    findings.extend(analyses::run(&graph));

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Workspace crate dependencies, read from each crate's `Cargo.toml`:
/// maps a crate directory name to the directory names of the workspace
/// crates it depends on. `deepsd` is the core crate's lib name; every
/// other crate is `deepsd-<dir>`. Call-graph resolution uses this to
/// discard cross-crate edges the build graph would reject.
fn crate_deps(
    root: &Path,
) -> Result<std::collections::BTreeMap<String, std::collections::BTreeSet<String>>, String> {
    let mut deps = std::collections::BTreeMap::new();
    let crates_dir = root.join("crates");
    for dir in sorted_dir(&crates_dir).map_err(|e| format!("reading crates/: {e}"))? {
        let manifest = dir.join("Cargo.toml");
        let Some(name) = dir.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let mut set = std::collections::BTreeSet::new();
        for line in text.lines() {
            // Dependency keys look like `deepsd-nn = { workspace = true }`.
            let Some(key) = line.split('=').next().map(str::trim) else {
                continue;
            };
            if key == "deepsd" && name != "core" {
                set.insert("core".to_string());
            } else if let Some(dep) = key.strip_prefix("deepsd-") {
                if dep.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && dep != name {
                    set.insert(dep.to_string());
                }
            }
        }
        deps.insert(name, set);
    }
    Ok(deps)
}

/// Hand-rolled JSON with stable field order (the crate is
/// zero-dependency). `baseline` adds the `--check` deviation arrays.
fn render_json(
    findings: &[Finding],
    baseline: Option<(&[baseline::Deviation], &[baseline::Deviation])>,
) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.msg)
        ));
    }
    if findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str(&format!("  \"count\": {}", findings.len()));
    if let Some((over, stale)) = baseline {
        out.push_str(",\n  \"regressions\": [");
        for (i, ((rule, path), n, allowed)) in over.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"live\": {n}, \"allowed\": {allowed}}}",
                json_escape(rule),
                json_escape(path)
            ));
        }
        if !over.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"shrinkable\": [");
        for (i, ((rule, path), n, allowed)) in stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"live\": {n}, \"allowed\": {allowed}}}",
                json_escape(rule),
                json_escape(path)
            ));
        }
        if !stale.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
    }
    out.push_str("\n}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directory entries, sorted by path for deterministic walking.
fn sorted_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("chain → next"), "chain → next");
    }

    #[test]
    fn json_rendering_is_wellformed_for_empty_and_nonempty() {
        let empty = render_json(&[], None);
        assert!(empty.contains("\"findings\": []"));
        assert!(empty.contains("\"count\": 0"));

        let f = vec![Finding {
            rule: "float-eq",
            path: "crates/a/src/lib.rs".to_string(),
            line: 3,
            msg: "a \"quoted\" msg".to_string(),
        }];
        let one = render_json(&f, Some((&[], &[])));
        assert!(one.contains("\"rule\": \"float-eq\""));
        assert!(one.contains("\\\"quoted\\\""));
        assert!(one.contains("\"regressions\": []"));
        assert!(one.contains("\"shrinkable\": []"));
    }
}
