//! `deepsd-lint` — workspace invariant checker (DESIGN.md §4.5).
//!
//! Walks every `crates/*/src/**/*.rs` file and enforces the repo's
//! determinism, panic-safety and telemetry-hygiene invariants as named
//! rules, ratcheted against the committed `lint-baseline.txt`.
//!
//! ```text
//! cargo run -p deepsd-lint -- --check            # CI gate (exit 1 on regression)
//! cargo run -p deepsd-lint -- --list             # print every live finding
//! cargo run -p deepsd-lint -- --update-baseline  # rewrite lint-baseline.txt
//! ```
//!
//! Output is byte-identical across runs on the same tree: files are
//! walked in sorted order and findings are reported in (path, line,
//! rule) order.

mod baseline;
mod lexer;
mod rules;

use baseline::Baseline;
use rules::Finding;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.txt";

const USAGE: &str = "\
deepsd-lint — DeepSD workspace invariant checker

USAGE:
    deepsd-lint [--root DIR] (--check | --list | --update-baseline | --list-rules)

MODES:
    --check            exit 1 if any finding exceeds lint-baseline.txt (CI gate)
    --list             print every live finding
    --update-baseline  rewrite lint-baseline.txt from the current tree
    --list-rules       print the rule names

OPTIONS:
    --root DIR         workspace root (default: nearest ancestor with a crates/ dir)
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("deepsd-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let mut mode: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" | "--list" | "--update-baseline" | "--list-rules" => {
                if mode.is_some() {
                    return Err("more than one mode given".to_string());
                }
                mode = Some(match arg.as_str() {
                    "--check" => "check",
                    "--list" => "list",
                    "--update-baseline" => "update",
                    _ => "rules",
                });
            }
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    let Some(mode) = mode else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };

    if mode == "rules" {
        for rule in rules::RULES {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root {
        Some(r) => r,
        None => find_root()?,
    };
    let findings = lint_workspace(&root)?;

    match mode {
        "list" => {
            for f in &findings {
                println!("{}", f.render());
            }
            println!("{} finding(s)", findings.len());
            Ok(ExitCode::SUCCESS)
        }
        "update" => {
            let text = Baseline::from_findings(&findings).render();
            std::fs::write(root.join(BASELINE_FILE), &text)
                .map_err(|e| format!("writing {BASELINE_FILE}: {e}"))?;
            println!(
                "wrote {BASELINE_FILE}: {} finding(s) across {} (rule, file) pair(s)",
                findings.len(),
                Baseline::from_findings(&findings).counts.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let base_path = root.join(BASELINE_FILE);
            let base = match std::fs::read_to_string(&base_path) {
                Ok(text) => Baseline::parse(&text)?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
                Err(e) => return Err(format!("reading {BASELINE_FILE}: {e}")),
            };
            let live = Baseline::from_findings(&findings);
            let (over, stale) = base.check(&live);
            for ((rule, path), n, _) in &stale {
                println!("note: baseline for {rule} in {path} can shrink to {n}");
            }
            if over.is_empty() {
                println!(
                    "deepsd-lint: clean ({} finding(s), all within baseline)",
                    findings.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            println!("deepsd-lint: {} regression(s) over baseline:", over.len());
            for ((rule, path), n, allowed) in &over {
                println!("  {rule} in {path}: {n} finding(s), baseline allows {allowed}");
                for f in findings
                    .iter()
                    .filter(|f| f.rule == rule && &f.path == path)
                {
                    println!("    {}:{} {}", f.path, f.line, f.msg);
                }
            }
            println!(
                "fix the findings, add `// deepsd-lint: allow(rule, reason=\"…\")`, or run \
                 `cargo run -p deepsd-lint -- --update-baseline` and justify the growth in review"
            );
            Ok(ExitCode::FAILURE)
        }
        _ => unreachable!("mode is validated above"),
    }
}

/// Nearest ancestor of the current directory containing `crates/`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no workspace root with a crates/ directory found; use --root".to_string());
        }
    }
}

/// Lints every `crates/*/src/**/*.rs` file under `root`, in sorted
/// order, and returns the findings sorted by (path, line, rule).
fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let crates =
        sorted_dir(&crates_dir).map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files).map_err(|e| format!("walking {}: {e}", src.display()))?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        findings.extend(rules::lint_file(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(findings)
}

/// Directory entries, sorted by path for deterministic walking.
fn sorted_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
