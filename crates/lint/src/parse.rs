//! Item-level parser for the interprocedural analyses (DESIGN.md §4.10).
//!
//! Sits on top of [`crate::lexer`] and extracts just enough structure
//! for a workspace call graph: `impl` blocks (to qualify methods),
//! `fn` items with their body spans, `use` aliases, call expressions,
//! method calls, and the per-body facts the graph analyses consume
//! (panic sites, determinism-taint sources, lock acquisitions). No full
//! grammar is attempted — expressions are never parsed, only token
//! shapes are matched — so the result is an over-approximation by
//! construction (see the soundness caveats in DESIGN.md §4.10).

use crate::lexer::{lex, Tok, TokKind};

/// How a call site names its callee. Resolution happens later, against
/// the whole-workspace index ([`crate::graph`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalleeRef {
    /// `foo(…)` — unqualified call.
    Bare(String),
    /// `Qualifier::foo(…)` — only the last qualifier segment is kept
    /// (`a::b::Type::foo` ⇒ `("Type", "foo")`).
    Qualified(String, String),
    /// `.foo(…)` — method call; the receiver type is unknown.
    Method(String),
}

/// One body event, in lexical order. The ordering of lock acquisitions
/// relative to calls is what the lock-order analysis consumes.
#[derive(Debug, Clone)]
pub enum BodyEvent {
    /// A call or method-call expression.
    Call { callee: CalleeRef, line: u32 },
    /// A `Mutex`/`RwLock` acquisition on a known lock field.
    Lock { lock: String, line: u32 },
}

/// Kind of panic site found in a body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(`.
    UnwrapExpect,
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert*!`.
    Macro,
    /// Direct `expr[…]` indexing (slice patterns included — same shape).
    Index,
}

impl CalleeRef {
    /// The bare callee name, whatever the call shape. Tests assert on it.
    #[cfg(test)]
    pub fn name(&self) -> &str {
        match self {
            CalleeRef::Bare(n) | CalleeRef::Method(n) | CalleeRef::Qualified(_, n) => n,
        }
    }
}

/// One panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Site classification; findings render `what`, tests assert on it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub kind: PanicKind,
    pub line: u32,
    /// Short site description for the finding message.
    pub what: String,
}

/// Kind of determinism-taint source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `Instant::now` / `SystemTime::now` wall-clock read.
    WallClock,
    /// Iteration over a `HashMap`/`HashSet` in hash order.
    MapIter,
    /// `RandomState` — a randomly seeded hasher.
    RandomState,
    /// `std::env::var` / `var_os` read.
    EnvRead,
}

/// One determinism-taint source site.
#[derive(Debug, Clone)]
pub struct TaintSite {
    pub kind: TaintKind,
    pub line: u32,
    pub what: String,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// Crate directory name (`serve`, `core`, …).
    pub krate: String,
    /// Enclosing `impl` type, if any.
    pub type_name: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Calls and lock acquisitions, in lexical order.
    pub events: Vec<BodyEvent>,
    /// Panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Determinism-taint sources in the body.
    pub taints: Vec<TaintSite>,
    /// Body mentions a `"time_…"` string literal: wall-clock reads in
    /// this fn feed the telemetry timing namespace (sanitized).
    pub has_time_metric: bool,
    /// Inside a `#[cfg(test)]` item.
    pub is_test: bool,
}

impl FnDef {
    /// Stable display name: `Type::name` or `name`.
    pub fn qual_name(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the graph layer needs from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub file: String,
    pub fns: Vec<FnDef>,
    /// Names of struct fields typed `Mutex<…>` / `RwLock<…>` in this
    /// file (contributes to the workspace lock-field set).
    pub lock_fields: Vec<String>,
    /// `deepsd-lint: allow(rule, …)` directive (rule, line) pairs —
    /// graph findings anchored on `line` or `line + 1` are suppressed.
    pub allows: Vec<(String, u32)>,
}

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Keywords that look like call heads but are not (`if (…)`,
/// `match (…)`, `return (…)`, …) plus binding/type positions.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "impl"
            | "where"
            | "use"
            | "pub"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "const"
            | "static"
            | "type"
            | "unsafe"
            | "dyn"
    )
}

/// Parses one file into function items with their call/panic/taint/lock
/// facts. `path` must be the workspace-relative path; `crates/<k>/…`
/// yields the crate name `<k>`.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let krate = path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();

    let mut out = ParsedFile {
        file: path.to_string(),
        ..ParsedFile::default()
    };

    // Allow directives: reuse the comment stream. Unknown rules are the
    // rule engine's problem (it reports lint-directive findings); here
    // any well-formed allow is collected.
    for c in &lexed.comments {
        if let Some(rest) = c.text.trim_start().strip_prefix("deepsd-lint:") {
            if let Some(body) = rest.trim().strip_prefix("allow(") {
                let rule = body
                    .split([',', ')'])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if !rule.is_empty() {
                    out.allows.push((rule, c.line));
                }
            }
        }
    }

    let skip = test_mask(toks);
    collect_lock_fields(toks, &mut out.lock_fields);

    // Walk items tracking brace depth, the enclosing `impl` type and
    // `fn` bodies. Nested fns/closures attribute their facts to the
    // innermost named fn (closures have no name and are inlined into
    // the enclosing fn — call-graph-wise they run when it runs, which
    // over-approximates deferred execution; see DESIGN.md §4.10).
    let mut depth: i32 = 0;
    let mut impl_stack: Vec<(String, i32)> = Vec::new(); // (type, depth at `{`)
    let mut fn_stack: Vec<(usize, i32)> = Vec::new(); // (index into out.fns, body depth)
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];

        if (t.is_ident("impl") || t.is_ident("trait")) && !skip.get(i).copied().unwrap_or(false) {
            let head = if t.is_ident("impl") {
                parse_impl_head(toks, i)
            } else {
                // `trait Name … {` — default methods qualify as
                // `Name::method`, mirroring impl blocks.
                toks.get(i + 1)
                    .filter(|n| n.kind == TokKind::Ident)
                    .map(|n| (n.text.clone(), 0))
            };
            if let Some((ty, _)) = head {
                impl_stack.push((ty, depth + 1));
                // The `{` itself is consumed by the depth-tracking
                // below when the walk reaches it.
            }
            i += 1;
            continue;
        }

        if t.is_ident("fn") {
            if let Some((name, body_open)) = parse_fn_head(toks, i) {
                let type_name = impl_stack.last().map(|(ty, _)| ty.clone());
                out.fns.push(FnDef {
                    file: path.to_string(),
                    krate: krate.clone(),
                    type_name,
                    name,
                    line: t.line,
                    events: Vec::new(),
                    panics: Vec::new(),
                    taints: Vec::new(),
                    has_time_metric: false,
                    is_test: skip.get(i).copied().unwrap_or(false),
                });
                let fn_idx = out.fns.len() - 1;
                // Advance to the body `{`, then scan the body inline —
                // the outer loop continues from inside it so nested
                // items are still seen.
                fn_stack.push((fn_idx, depth + 1));
                i = body_open;
                continue;
            }
            i += 1;
            continue;
        }

        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    while impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                        impl_stack.pop();
                    }
                    while fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        fn_stack.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }

        // Body facts go to the innermost open fn.
        if let Some(&(fn_idx, _)) = fn_stack.last() {
            scan_body_token(toks, i, &mut out.fns[fn_idx], &mut out.lock_fields);
        }
        i += 1;
    }

    // Map-iteration taint needs the file's map idents; do a second,
    // cheap pass now that fn spans are known.
    let maps = map_idents(toks);
    if !maps.is_empty() {
        attach_map_iter_taints(toks, &maps, &mut out.fns);
    }
    out
}

/// `impl … {`: returns the implemented type name and the token index of
/// the opening `{`. `impl<T> Trait<U> for Type<V> {` ⇒ `Type`.
fn parse_impl_head(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip generic parameters after `impl`.
    j = skip_generics(toks, j);
    // Collect path segments up to `for`, `{` or `where`; on `for`,
    // restart collection (the type after `for` wins).
    let mut last_seg: Option<String> = None;
    let mut guard = 0usize;
    while j < toks.len() && guard < 256 {
        guard += 1;
        let t = &toks[j];
        if t.is_ident("for") {
            last_seg = None;
            j += 1;
            continue;
        }
        if t.is_ident("where") || t.is_punct("{") {
            break;
        }
        if t.kind == TokKind::Ident && !is_keyword(&t.text) {
            last_seg = Some(t.text.clone());
            j += 1;
            j = skip_generics(toks, j);
            continue;
        }
        // `&`, `::`, lifetimes, `dyn`, `(`, `)` in e.g. fn-pointer impls…
        j += 1;
    }
    // Find the opening `{` from here.
    while j < toks.len() && !toks[j].is_punct("{") {
        if toks[j].is_punct(";") {
            return None;
        }
        j += 1;
    }
    last_seg.map(|ty| (ty, j))
}

/// `fn name … {`: returns the name and the token index of the body
/// `{`. Returns `None` for body-less declarations (trait methods).
fn parse_fn_head(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    // Scan forward to the body `{`, skipping the parameter list and any
    // return type / where clause. Parens and angle brackets nest;
    // a `;` at paren-depth 0 means there is no body.
    let mut j = i + 2;
    let mut paren: i32 = 0;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "{" if paren == 0 => return Some((name.text.clone(), j)),
                ";" if paren == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Skips a balanced `<…>` generic list starting at `j`, if present.
fn skip_generics(toks: &[Tok], j: usize) -> usize {
    if !toks.get(j).is_some_and(|t| t.is_punct("<")) {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        if toks[k].kind == TokKind::Punct {
            match toks[k].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                ">>" => {
                    depth -= 2;
                    if depth <= 0 {
                        return k + 1;
                    }
                }
                ";" | "{" => return k, // malformed; bail out
                _ => {}
            }
        }
        k += 1;
    }
    k
}

/// Examines the token at `i` inside a fn body and records calls, panic
/// sites, wall-clock/env/hasher taints and lock acquisitions.
fn scan_body_token(toks: &[Tok], i: usize, f: &mut FnDef, lock_fields: &mut [String]) {
    let t = &toks[i];

    if t.kind == TokKind::Str && t.text.starts_with("time_") {
        f.has_time_metric = true;
        return;
    }
    if t.kind != TokKind::Ident {
        // Direct indexing `expr[…]`.
        if t.is_punct("[") && i >= 1 {
            let p = &toks[i - 1];
            let indexable = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                || p.is_punct(")")
                || p.is_punct("]");
            if indexable {
                f.panics.push(PanicSite {
                    kind: PanicKind::Index,
                    line: t.line,
                    what: "direct indexing".to_string(),
                });
            }
        }
        return;
    }

    let next_is = |k: usize, s: &str| toks.get(i + k).is_some_and(|p| p.is_punct(s));

    // Panic macros: `name!(…)`.
    if PANIC_MACROS.contains(&t.text.as_str()) && next_is(1, "!") {
        f.panics.push(PanicSite {
            kind: PanicKind::Macro,
            line: t.line,
            what: format!("{}!", t.text),
        });
        return;
    }

    // Method calls `.name(` — including `.unwrap()` / `.expect(` and
    // lock acquisitions.
    if i >= 1 && toks[i - 1].is_punct(".") && next_is(1, "(") {
        match t.text.as_str() {
            "unwrap" | "expect" => {
                f.panics.push(PanicSite {
                    kind: PanicKind::UnwrapExpect,
                    line: t.line,
                    what: format!(".{}()", t.text),
                });
                return;
            }
            "lock" | "read" | "write" => {
                // `recv.lock()`: a lock acquisition when the receiver's
                // last segment is a known Mutex/RwLock field; otherwise
                // fall through to a plain method call (e.g. the
                // `Telemetry::lock` helper resolves via the graph).
                if let Some(recv) = receiver_last_segment(toks, i - 1) {
                    if lock_fields.contains(&recv) {
                        f.events.push(BodyEvent::Lock {
                            lock: recv,
                            line: t.line,
                        });
                        return;
                    }
                }
            }
            _ => {}
        }
        f.events.push(BodyEvent::Call {
            callee: CalleeRef::Method(t.text.clone()),
            line: t.line,
        });
        return;
    }

    // Wall-clock taint: `Instant::now` / `SystemTime::now`.
    if (t.is_ident("Instant") || t.is_ident("SystemTime"))
        && next_is(1, "::")
        && toks.get(i + 2).is_some_and(|p| p.is_ident("now"))
    {
        f.taints.push(TaintSite {
            kind: TaintKind::WallClock,
            line: t.line,
            what: format!("{}::now", t.text),
        });
        return;
    }

    // Randomly seeded hasher.
    if t.is_ident("RandomState") {
        f.taints.push(TaintSite {
            kind: TaintKind::RandomState,
            line: t.line,
            what: "RandomState".to_string(),
        });
        return;
    }

    // Env reads: `env::var(` / `env::var_os(` (with or without `std::`).
    if t.is_ident("env")
        && next_is(1, "::")
        && toks
            .get(i + 2)
            .is_some_and(|p| p.is_ident("var") || p.is_ident("var_os"))
        && next_is(3, "(")
    {
        f.taints.push(TaintSite {
            kind: TaintKind::EnvRead,
            line: toks[i + 2].line,
            what: format!("env::{}", toks[i + 2].text),
        });
        return;
    }

    // Call expressions. `name(` not preceded by `.` (methods handled
    // above) or `!` (macros are not fns). `Qual::name(` keeps the last
    // qualifier. Turbofish `name::<T>(` is recognised too.
    if is_keyword(&t.text) {
        return;
    }
    let call_paren = if next_is(1, "(") {
        Some(i + 1)
    } else if next_is(1, "::") && next_is(2, "<") {
        let after = skip_generics(toks, i + 2);
        toks.get(after)
            .is_some_and(|p| p.is_punct("("))
            .then_some(after)
    } else {
        None
    };
    let Some(_) = call_paren else { return };
    let prev = i.checked_sub(1).map(|k| &toks[k]);
    if prev.is_some_and(|p| p.is_punct(".") || p.is_punct("!") || p.is_ident("fn")) {
        return;
    }
    if prev.is_some_and(|p| p.is_punct("::")) {
        // Walk back the path: `a::b::name(` ⇒ qualifier `b`.
        if i >= 2 && toks[i - 2].kind == TokKind::Ident {
            f.events.push(BodyEvent::Call {
                callee: CalleeRef::Qualified(toks[i - 2].text.clone(), t.text.clone()),
                line: t.line,
            });
        }
        return;
    }
    f.events.push(BodyEvent::Call {
        callee: CalleeRef::Bare(t.text.clone()),
        line: t.line,
    });
}

/// Walks back a `.`-chain from the `.` at `dot` and returns the last
/// path segment of the receiver (`self.state.jobs.lock()` ⇒ `jobs`).
/// Returns `None` when the receiver is not a plain ident chain (method
/// results, indexing, …) — those are treated as method calls.
fn receiver_last_segment(toks: &[Tok], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let r = &toks[dot - 1];
    if r.kind == TokKind::Ident && r.text != "self" {
        return Some(r.text.clone());
    }
    None
}

/// Struct fields (or statics) typed `Mutex<…>` / `RwLock<…>`, possibly
/// wrapped (`Arc<Mutex<…>>`): the nearest preceding `ident :` names the
/// field.
fn collect_lock_fields(toks: &[Tok], out: &mut Vec<String>) {
    for i in 0..toks.len() {
        if !(toks[i].is_ident("Mutex") || toks[i].is_ident("RwLock")) {
            continue;
        }
        // Must be a type position: followed by `<`.
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("<")) {
            continue;
        }
        // Walk back over wrapper idents, `<`, `::` to find `name :`.
        let mut j = i;
        let mut guard = 0usize;
        while j > 0 && guard < 16 {
            guard += 1;
            let p = &toks[j - 1];
            if p.is_punct("<") || p.is_punct("::") || p.kind == TokKind::Ident {
                if p.kind == TokKind::Ident
                    && j >= 2
                    && toks[j - 2].is_punct(":")
                    && toks
                        .get(j.wrapping_sub(3))
                        .is_some_and(|n| n.kind == TokKind::Ident)
                {
                    let name = toks[j - 3].text.clone();
                    if !out.contains(&name) {
                        out.push(name);
                    }
                    break;
                }
                j -= 1;
            } else if p.is_punct(":") && j >= 2 && toks[j - 2].kind == TokKind::Ident {
                let name = toks[j - 2].text.clone();
                if !out.contains(&name) {
                    out.push(name);
                }
                break;
            } else {
                break;
            }
        }
    }
    out.sort();
    out.dedup();
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file — same
/// heuristic as the per-file rule (type ascriptions and constructor
/// bindings).
fn map_idents(toks: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct("&") || p.is_ident("mut") || p.is_punct("::") || p.kind == TokKind::Ident
            {
                if p.kind == TokKind::Ident
                    && !(p.is_ident("mut")
                        || toks.get(j).is_some_and(|n| n.is_punct("::"))
                        || toks.get(j - 1 + 1).is_some_and(|n| n.is_punct("::")))
                {
                    break;
                }
                j -= 1;
            } else {
                break;
            }
        }
        if j > 1 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
            names.push(toks[j - 2].text.clone());
            continue;
        }
        if i >= 2 && toks[i - 1].is_punct("=") && toks[i - 2].kind == TokKind::Ident {
            names.push(toks[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Adds `MapIter` taints for hash-ordered iteration over the file's
/// known map idents, attributed to the enclosing fn by line range.
fn attach_map_iter_taints(toks: &[Tok], maps: &[String], fns: &mut [FnDef]) {
    let is_map = |t: &Tok| t.kind == TokKind::Ident && maps.iter().any(|m| m == &t.text);
    let mut sites: Vec<TaintSite> = Vec::new();
    for i in 0..toks.len() {
        // `map.iter()` …
        if i >= 2
            && toks[i].kind == TokKind::Ident
            && MAP_ITER_METHODS.contains(&toks[i].text.as_str())
            && toks[i - 1].is_punct(".")
            && is_map(&toks[i - 2])
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            sites.push(TaintSite {
                kind: TaintKind::MapIter,
                line: toks[i].line,
                what: format!("{}.{}()", toks[i - 2].text, toks[i].text),
            });
        }
        // `for … in &map`
        if toks[i].is_ident("in") {
            for j in (i + 1)..toks.len().min(i + 8) {
                if toks[j].kind == TokKind::Punct && (toks[j].text == "{" || toks[j].text == ";") {
                    break;
                }
                if is_map(&toks[j]) && !toks.get(j + 1).is_some_and(|t| t.is_punct(".")) {
                    sites.push(TaintSite {
                        kind: TaintKind::MapIter,
                        line: toks[j].line,
                        what: format!("for … in {}", toks[j].text),
                    });
                    break;
                }
            }
        }
    }
    // Attribute to the innermost fn whose body most plausibly contains
    // the site: the fn with the greatest start line ≤ site line. (Body
    // end lines are not tracked; for the file shapes in this workspace
    // — fns in declaration order — this is exact.)
    for site in sites {
        let mut best: Option<usize> = None;
        for (idx, f) in fns.iter().enumerate() {
            if f.line <= site.line && best.is_none_or(|b: usize| fns[b].line < f.line) {
                best = Some(idx);
            }
        }
        if let Some(idx) = best {
            fns[idx].taints.push(site);
        }
    }
    for f in fns.iter_mut() {
        f.taints.sort_by_key(|s| s.line);
    }
}

/// Marks tokens inside `#[cfg(test)]` items — same walk as the rule
/// engine's.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        let mut depth = 0i32;
        let mut entered = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        depth += 1;
                        entered = true;
                    }
                    "}" => {
                        depth -= 1;
                        if entered && depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        for flag in skip.iter_mut().take((j + 1).min(toks.len())).skip(start) {
            *flag = true;
        }
        i = j + 1;
    }
    skip
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/serve/src/x.rs", src)
    }

    fn calls_of(f: &FnDef) -> Vec<String> {
        f.events
            .iter()
            .filter_map(|e| match e {
                BodyEvent::Call { callee, .. } => Some(callee.name().to_string()),
                BodyEvent::Lock { .. } => None,
            })
            .collect()
    }

    #[test]
    fn fn_items_and_impl_methods_are_qualified() {
        let p = parse(
            r#"
            fn free() { helper(); }
            struct S;
            impl S {
                fn method(&self) { self.other(); free(); }
            }
            impl Clone for S {
                fn clone(&self) -> S { S }
            }
            "#,
        );
        let names: Vec<String> = p.fns.iter().map(FnDef::qual_name).collect();
        assert_eq!(names, vec!["free", "S::method", "S::clone"]);
        assert_eq!(calls_of(&p.fns[1]), vec!["other", "free"]);
    }

    #[test]
    fn generic_impls_resolve_the_implemented_type() {
        let p = parse(
            r#"
            impl<X: ItemSource> ItemSource for StreamingExtractor<X> {
                fn extract(&mut self) { go(); }
            }
            impl<'a, T> Wrapper<'a, T> {
                fn get(&self) -> u32 { 0 }
            }
            "#,
        );
        let names: Vec<String> = p.fns.iter().map(FnDef::qual_name).collect();
        assert_eq!(names, vec!["StreamingExtractor::extract", "Wrapper::get"]);
    }

    #[test]
    fn call_shapes_bare_qualified_method_turbofish() {
        let p = parse(
            r#"
            fn f() {
                bare();
                module::qualified();
                a::b::Type::assoc();
                recv.method_call();
                generic::<u32>();
                not_a_call;
                if x() {}
                mac!(ignored_call());
            }
            "#,
        );
        let f = &p.fns[0];
        let calls: Vec<&CalleeRef> = f
            .events
            .iter()
            .filter_map(|e| match e {
                BodyEvent::Call { callee, .. } => Some(callee),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&&CalleeRef::Bare("bare".into())));
        assert!(calls.contains(&&CalleeRef::Qualified("module".into(), "qualified".into())));
        assert!(calls.contains(&&CalleeRef::Qualified("Type".into(), "assoc".into())));
        assert!(calls.contains(&&CalleeRef::Method("method_call".into())));
        assert!(calls.contains(&&CalleeRef::Bare("generic".into())));
        assert!(calls.contains(&&CalleeRef::Bare("x".into())));
        // The call nested inside a macro body is still seen (tokens are
        // scanned, not parsed) — over-approximation is fine here.
        assert!(calls.contains(&&CalleeRef::Bare("ignored_call".into())));
    }

    #[test]
    fn panic_sites_are_collected() {
        let p = parse(
            r#"
            fn f(v: &[u8], i: usize) -> u8 {
                let a = v.first().unwrap();
                let b = v[i];
                if i > 9 { panic!("boom"); }
                unreachable!()
            }
            "#,
        );
        let kinds: Vec<PanicKind> = p.fns[0].panics.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::UnwrapExpect,
                PanicKind::Index,
                PanicKind::Macro,
                PanicKind::Macro
            ]
        );
    }

    #[test]
    fn taint_sources_are_collected() {
        let p = parse(
            r#"
            use std::collections::HashMap;
            fn t(m: &HashMap<u32, f32>) {
                let now = std::time::Instant::now();
                let h = RandomState::new();
                let e = std::env::var("X");
                for (k, v) in m.iter() {}
            }
            "#,
        );
        let kinds: Vec<TaintKind> = p.fns[0].taints.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&TaintKind::WallClock));
        assert!(kinds.contains(&TaintKind::RandomState));
        assert!(kinds.contains(&TaintKind::EnvRead));
        assert!(kinds.contains(&TaintKind::MapIter));
    }

    #[test]
    fn time_metric_string_sanitizes_the_fn() {
        let p = parse(
            r#"
            fn timed(tel: &Telemetry) {
                let t = std::time::Instant::now();
                tel.observe("time_x_seconds", 1.0);
            }
            fn untimed() { let t = std::time::Instant::now(); }
            "#,
        );
        assert!(p.fns[0].has_time_metric);
        assert!(!p.fns[1].has_time_metric);
    }

    #[test]
    fn lock_fields_and_acquisitions() {
        let p = parse(
            r#"
            use std::sync::Mutex;
            struct Q { jobs: Mutex<Vec<u32>>, slot: Arc<Mutex<u8>>, n: u32 }
            impl Q {
                fn pop(&self) {
                    let g = self.jobs.lock();
                    let s = self.slot.lock();
                    self.helper();
                }
                fn helper(&self) {}
            }
            "#,
        );
        assert_eq!(p.lock_fields, vec!["jobs", "slot"]);
        let ev: Vec<String> = p.fns[0]
            .events
            .iter()
            .map(|e| match e {
                BodyEvent::Lock { lock, .. } => format!("L:{lock}"),
                BodyEvent::Call { callee, .. } => format!("C:{}", callee.name()),
            })
            .collect();
        assert_eq!(ev, vec!["L:jobs", "L:slot", "C:helper"]);
    }

    #[test]
    fn plain_lock_method_without_field_is_a_call() {
        // `self.lock()` with no `lock` Mutex field resolves through the
        // graph as a method call, not an acquisition.
        let p = parse(
            r#"
            impl T {
                fn counter(&self) { self.lock(); }
                fn lock(&self) {}
            }
            "#,
        );
        assert_eq!(calls_of(&p.fns[0]), vec!["lock"]);
    }

    #[test]
    fn test_items_are_marked() {
        let p = parse(
            r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                fn helper() { prod(); }
            }
            "#,
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn allows_are_collected_with_lines() {
        let p = parse("// deepsd-lint: allow(panic-reach, reason=\"audited\")\nfn f() {}\n");
        assert_eq!(p.allows, vec![("panic-reach".to_string(), 1)]);
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let p = parse(
            r#"
            trait T {
                fn decl(&self);
                fn with_default(&self) { helper(); }
            }
            "#,
        );
        let names: Vec<String> = p.fns.iter().map(FnDef::qual_name).collect();
        assert_eq!(names, vec!["T::with_default"]);
    }
}
