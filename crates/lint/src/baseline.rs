//! The ratchet baseline: `lint-baseline.txt`.
//!
//! The baseline records, per `(rule, file)`, how many findings are
//! tolerated. `--check` fails only when a pair's live count exceeds its
//! baselined count (or a new pair appears), so the tool lands green on
//! an imperfect tree and every subsequent PR may only hold the line or
//! shrink it. Counts instead of line numbers keep the file stable under
//! unrelated edits that shift code up or down.
//!
//! Format: one `rule<TAB>path<TAB>count` per line, sorted by rule then
//! path, `#` comments and blank lines ignored. Output is byte-stable:
//! the same tree always serialises to the same file.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Baseline key: rule name and workspace-relative path.
pub type Key = (String, String);

/// One baseline deviation: `(key, live_count, baselined_count)`.
pub type Deviation = (Key, usize, usize);

/// Parsed baseline: tolerated finding count per (rule, path).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<Key, usize>,
}

impl Baseline {
    /// Parses the baseline file format. Unparseable lines are errors —
    /// a silently dropped entry would loosen the ratchet.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (rule, path, count) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(c)) => (r, p, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected rule<TAB>path<TAB>count, got '{line}'",
                        idx + 1
                    ))
                }
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count '{count}'", idx + 1))?;
            counts.insert((rule.to_string(), path.to_string()), count);
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline from live findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<Key, usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.to_string(), f.path.clone()))
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serialises to the canonical sorted text form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# deepsd-lint ratchet baseline — tolerated findings per (rule, file).\n\
             # Regenerate with `cargo run -p deepsd-lint -- --update-baseline`.\n\
             # Shrinking a count (or deleting a line) is always allowed; growing one fails CI.\n",
        );
        for ((rule, path), count) in &self.counts {
            out.push_str(&format!("{rule}\t{path}\t{count}\n"));
        }
        out
    }

    /// Compares live findings against the baseline. Returns the
    /// regressions (pairs over budget, with the excess) and the stale
    /// entries (baselined pairs whose live count shrank — informational
    /// only).
    pub fn check(&self, live: &Baseline) -> (Vec<Deviation>, Vec<Deviation>) {
        let mut over = Vec::new();
        let mut stale = Vec::new();
        for (key, &n) in &live.counts {
            let allowed = self.counts.get(key).copied().unwrap_or(0);
            if n > allowed {
                over.push((key.clone(), n, allowed));
            }
        }
        for (key, &allowed) in &self.counts {
            let n = live.counts.get(key).copied().unwrap_or(0);
            if n < allowed {
                stale.push((key.clone(), n, allowed));
            }
        }
        (over, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            msg: String::new(),
        }
    }

    #[test]
    fn roundtrip_is_byte_stable() {
        let findings = vec![
            finding("cast-truncate", "crates/simdata/src/types.rs"),
            finding("cast-truncate", "crates/simdata/src/types.rs"),
            finding("float-eq", "crates/core/src/metrics.rs"),
        ];
        let b = Baseline::from_findings(&findings);
        let text = b.render();
        let reparsed = Baseline::parse(&text).unwrap();
        assert_eq!(b, reparsed);
        assert_eq!(text, reparsed.render());
        assert!(text.contains("cast-truncate\tcrates/simdata/src/types.rs\t2"));
    }

    #[test]
    fn over_budget_and_new_pairs_fail() {
        let base = Baseline::from_findings(&[finding("float-eq", "a.rs")]);
        let live = Baseline::from_findings(&[
            finding("float-eq", "a.rs"),
            finding("float-eq", "a.rs"),
            finding("cast-truncate", "b.rs"),
        ]);
        let (over, stale) = base.check(&live);
        assert_eq!(over.len(), 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn shrinking_is_allowed_and_reported_as_stale() {
        let base = Baseline::parse("float-eq\ta.rs\t3\n").unwrap();
        let live = Baseline::from_findings(&[finding("float-eq", "a.rs")]);
        let (over, stale) = base.check(&live);
        assert!(over.is_empty());
        assert_eq!(stale, vec![(("float-eq".into(), "a.rs".into()), 1, 3)]);
    }

    #[test]
    fn comments_and_blanks_ignored_but_garbage_rejected() {
        assert!(Baseline::parse("# comment\n\nfloat-eq\ta.rs\t1\n").is_ok());
        assert!(Baseline::parse("not a baseline line\n").is_err());
        assert!(Baseline::parse("float-eq\ta.rs\tmany\n").is_err());
    }
}
