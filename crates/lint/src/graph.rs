//! The workspace call graph (DESIGN.md §4.10).
//!
//! Nodes are the parsed [`FnDef`]s of every non-test function in the
//! workspace; edges are call sites resolved by name against a
//! workspace-wide index. Resolution is deliberately an
//! over-approximation (trait dispatch, fn pointers and closures cannot
//! be resolved lexically) but scope-aware to keep the noise down:
//!
//! - `Qualified("Type", "f")` resolves to `impl Type { fn f }` defs
//!   anywhere in the workspace; if none exist, to defs in files named
//!   `type.rs` (module-qualified free fns); else to any `f`.
//! - `Bare("f")` prefers same-file defs, then same-crate, then any.
//! - `Method("f")` prefers same-file defs, then any workspace def.
//!   Methods that only exist in `std` (`push`, `get`, …) resolve to
//!   nothing and vanish — `std` is assumed panic-free at the API
//!   contract level; panics *visible in workspace code* (`.unwrap()`,
//!   indexing) are recorded as sites by the parser instead.
//!
//! Everything is ordered (`BTreeMap`/sorted `Vec`s) so walks, chains
//! and findings are byte-identical across runs.

use crate::parse::{BodyEvent, CalleeRef, FnDef, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Node index into [`Graph::fns`].
pub type NodeId = usize;

/// One body event with its call targets resolved, in lexical order.
/// The lock-order analysis consumes the interleaving.
#[derive(Debug, Clone)]
pub enum ResolvedEvent {
    /// A call whose possible workspace targets are known (empty for
    /// std-only names).
    Call { targets: Vec<NodeId>, line: u32 },
    /// A `Mutex`/`RwLock` acquisition.
    Lock { lock: String, line: u32 },
}

/// The resolved workspace call graph.
pub struct Graph {
    /// All non-test fns, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// Out-edges per node, sorted and deduplicated.
    pub calls: Vec<Vec<NodeId>>,
    /// In-edges per node, sorted and deduplicated.
    pub callers: Vec<Vec<NodeId>>,
    /// Ordered resolved body events per node.
    pub events: Vec<Vec<ResolvedEvent>>,
    /// `allow(rule)` directive lines per file: file → [(rule, line)].
    pub allows: BTreeMap<String, Vec<(String, u32)>>,
}

impl Graph {
    /// Builds the graph with no crate-dependency information: every
    /// crate may call every other. Unit tests use this.
    #[cfg(test)]
    pub fn build(files: Vec<ParsedFile>) -> Graph {
        Graph::build_with_deps(files, &BTreeMap::new())
    }

    /// Builds the graph from every parsed file. `deps` maps a crate
    /// directory name to the workspace crates it depends on (from its
    /// `Cargo.toml`); resolution discards cross-crate targets the
    /// build graph would reject — `core` code can never call into
    /// `serve`, so a method-name collision must not fabricate that
    /// edge. Crates absent from `deps` are left unfiltered.
    pub fn build_with_deps(
        files: Vec<ParsedFile>,
        deps: &BTreeMap<String, BTreeSet<String>>,
    ) -> Graph {
        // Transitive closure: `serve` depends on `core` depends on
        // `nn`, so a call in `serve` may land in `nn`.
        let mut closure: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for k in deps.keys() {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack: Vec<&str> = vec![k.as_str()];
            while let Some(c) = stack.pop() {
                if let Some(ds) = deps.get(c) {
                    for d in ds {
                        if seen.insert(d.as_str()) {
                            stack.push(d.as_str());
                        }
                    }
                }
            }
            closure.insert(k.as_str(), seen);
        }
        let may_call = |from: &str, to: &str| -> bool {
            from == to
                || match closure.get(from) {
                    Some(set) => set.contains(to),
                    None => true,
                }
        };
        let mut fns: Vec<FnDef> = Vec::new();
        let mut allows: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
        for pf in files {
            if !pf.allows.is_empty() {
                allows.insert(pf.file.clone(), pf.allows.clone());
            }
            fns.extend(pf.fns.into_iter().filter(|f| !f.is_test));
        }
        fns.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

        // Name indices. All value vectors end up sorted because `fns`
        // is iterated in sorted order.
        let mut by_name: BTreeMap<&str, Vec<NodeId>> = BTreeMap::new();
        let mut by_type_name: BTreeMap<(&str, &str), Vec<NodeId>> = BTreeMap::new();
        let mut by_file_name: BTreeMap<(&str, &str), Vec<NodeId>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(&str, &str), Vec<NodeId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(id);
            if let Some(ty) = &f.type_name {
                by_type_name.entry((ty, &f.name)).or_default().push(id);
            }
            by_file_name.entry((&f.file, &f.name)).or_default().push(id);
            by_crate_name
                .entry((&f.krate, &f.name))
                .or_default()
                .push(id);
        }

        let mut calls: Vec<Vec<NodeId>> = vec![Vec::new(); fns.len()];
        let mut events: Vec<Vec<ResolvedEvent>> = vec![Vec::new(); fns.len()];
        for (id, f) in fns.iter().enumerate() {
            let mut out: BTreeSet<NodeId> = BTreeSet::new();
            for ev in &f.events {
                let BodyEvent::Call { callee, line } = ev else {
                    if let BodyEvent::Lock { lock, line } = ev {
                        events[id].push(ResolvedEvent::Lock {
                            lock: lock.clone(),
                            line: *line,
                        });
                    }
                    continue;
                };
                let targets: Vec<NodeId> = match callee {
                    CalleeRef::Qualified(q, name) => {
                        // `Self::f()` means the enclosing impl type.
                        let q: &str = if q == "Self" {
                            f.type_name.as_deref().unwrap_or(q)
                        } else {
                            q
                        };
                        let typed = by_type_name
                            .get(&(q, name.as_str()))
                            .cloned()
                            .unwrap_or_default();
                        if !typed.is_empty() {
                            typed
                        } else {
                            // `module::f` — match defs whose file stem is
                            // the module name.
                            let modfile: Vec<NodeId> = by_name
                                .get(name.as_str())
                                .map(|ids| {
                                    ids.iter()
                                        .copied()
                                        .filter(|&i| file_stem(&fns[i].file) == q)
                                        .collect()
                                })
                                .unwrap_or_default();
                            if !modfile.is_empty() {
                                modfile
                            } else if let Some(krate) = crate_qualifier(q) {
                                // `deepsd::f` / `deepsd_nn::f` — a
                                // workspace-crate-qualified call.
                                by_crate_name
                                    .get(&(krate, name.as_str()))
                                    .cloned()
                                    .unwrap_or_default()
                            } else {
                                // Neither an impl block, a module file,
                                // nor a workspace crate defines the
                                // qualifier: treat it as an external
                                // (std) type. Resolving `VecDeque::new`
                                // by bare name would fabricate an edge
                                // to every workspace `new`.
                                Vec::new()
                            }
                        }
                    }
                    CalleeRef::Bare(name) => resolve_scoped(
                        &by_file_name,
                        &by_crate_name,
                        &by_name,
                        &f.file,
                        &f.krate,
                        name,
                    ),
                    CalleeRef::Method(name) => {
                        let same_file = by_file_name
                            .get(&(f.file.as_str(), name.as_str()))
                            .cloned()
                            .unwrap_or_default();
                        if !same_file.is_empty() {
                            same_file
                        } else {
                            by_name.get(name.as_str()).cloned().unwrap_or_default()
                        }
                    }
                };
                let resolved: Vec<NodeId> = targets
                    .into_iter()
                    .filter(|&t| t != id && may_call(&f.krate, &fns[t].krate))
                    .collect();
                for &t in &resolved {
                    out.insert(t);
                }
                events[id].push(ResolvedEvent::Call {
                    targets: resolved,
                    line: *line,
                });
            }
            calls[id] = out.into_iter().collect();
        }

        let mut callers: Vec<Vec<NodeId>> = vec![Vec::new(); fns.len()];
        for (id, outs) in calls.iter().enumerate() {
            for &t in outs {
                callers[t].push(id);
            }
        }
        for c in callers.iter_mut() {
            c.sort_unstable();
            c.dedup();
        }

        Graph {
            fns,
            calls,
            callers,
            events,
            allows,
        }
    }

    /// Nodes matching a `Type::name` or bare-name pattern in a file
    /// prefix. Used to pick entry points and sinks.
    pub fn find(&self, file_prefix: &str, type_name: Option<&str>, name: &str) -> Vec<NodeId> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file.starts_with(file_prefix)
                    && f.name == name
                    && match type_name {
                        Some(t) => f.type_name.as_deref() == Some(t),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Deterministic multi-source BFS. Returns, for every reachable
    /// node, its predecessor on a shortest path (sources map to
    /// themselves). Neighbour order is the sorted edge order, so the
    /// chosen shortest paths are stable across runs.
    pub fn bfs(&self, sources: &[NodeId], reversed: bool) -> BTreeMap<NodeId, NodeId> {
        let mut pred: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut sorted_sources: Vec<NodeId> = sources.to_vec();
        sorted_sources.sort_unstable();
        sorted_sources.dedup();
        for &s in &sorted_sources {
            pred.insert(s, s);
            queue.push_back(s);
        }
        while let Some(n) = queue.pop_front() {
            let edges = if reversed {
                &self.callers[n]
            } else {
                &self.calls[n]
            };
            for &m in edges {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        pred
    }

    /// Walks predecessors from `node` back to its BFS source and
    /// renders the chain `source → … → node` as qualified names.
    pub fn chain(&self, pred: &BTreeMap<NodeId, NodeId>, node: NodeId) -> Vec<NodeId> {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(&p) = pred.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Renders a node chain as `a::b → c::d → …`.
    pub fn render_chain(&self, chain: &[NodeId]) -> String {
        chain
            .iter()
            .map(|&n| self.fns[n].qual_name())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// True when a graph finding at `(file, line)` is suppressed by an
    /// `allow(rule)` directive on the same or the preceding line.
    pub fn is_allowed(&self, rule: &str, file: &str, line: u32) -> bool {
        self.allows.get(file).is_some_and(|list| {
            list.iter()
                .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
        })
    }
}

/// Scope-aware bare-name resolution: same file, then same crate, then
/// the whole workspace.
fn resolve_scoped(
    by_file_name: &BTreeMap<(&str, &str), Vec<NodeId>>,
    by_crate_name: &BTreeMap<(&str, &str), Vec<NodeId>>,
    by_name: &BTreeMap<&str, Vec<NodeId>>,
    file: &str,
    krate: &str,
    name: &str,
) -> Vec<NodeId> {
    if let Some(ids) = by_file_name.get(&(file, name)) {
        return ids.clone();
    }
    if let Some(ids) = by_crate_name.get(&(krate, name)) {
        return ids.clone();
    }
    by_name.get(name).cloned().unwrap_or_default()
}

/// Maps a path qualifier that names a workspace crate to its directory
/// name under `crates/`: the core crate's lib is `deepsd`, every other
/// crate is `deepsd_<dir>`.
fn crate_qualifier(q: &str) -> Option<&str> {
    if q == "deepsd" {
        Some("core")
    } else {
        q.strip_prefix("deepsd_")
    }
}

/// `crates/serve/src/engine.rs` → `engine`.
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(p, s)| parse_file(p, s))
                .collect::<Vec<_>>(),
        )
    }

    fn node(g: &Graph, name: &str) -> NodeId {
        g.fns
            .iter()
            .position(|f| f.qual_name() == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn cross_file_bare_and_qualified_calls_resolve() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); util::shared(); }\nfn helper() {}",
            ),
            ("crates/a/src/util.rs", "pub fn shared() {}"),
        ]);
        let e = node(&g, "entry");
        let h = node(&g, "helper");
        let s = node(&g, "shared");
        assert!(g.calls[e].contains(&h));
        assert!(g.calls[e].contains(&s));
        assert!(g.callers[s].contains(&e));
    }

    #[test]
    fn method_calls_resolve_to_workspace_impls_only() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry(q: &Q) { q.pop(); v.push(1); }",
            ),
            ("crates/b/src/q.rs", "impl Q { pub fn pop(&self) {} }"),
        ]);
        let e = node(&g, "entry");
        let p = node(&g, "Q::pop");
        assert_eq!(g.calls[e], vec![p], "push has no workspace def → no edge");
    }

    #[test]
    fn same_file_method_preferred_over_foreign() {
        let g = graph_of(&[
            (
                "crates/a/src/t.rs",
                "impl T { fn go(&self) { self.lock(); } fn lock(&self) {} }",
            ),
            ("crates/b/src/h.rs", "impl H { pub fn lock(&self) {} }"),
        ]);
        let go = node(&g, "T::go");
        let tl = node(&g, "T::lock");
        assert_eq!(g.calls[go], vec![tl]);
    }

    #[test]
    fn type_qualified_calls_prefer_the_impl() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { Widget::new(); }",
            ),
            (
                "crates/b/src/w.rs",
                "impl Widget { pub fn new() -> Widget { Widget } }\nimpl Gadget { pub fn new() -> Gadget { Gadget } }",
            ),
        ]);
        let e = node(&g, "entry");
        let w = node(&g, "Widget::new");
        assert_eq!(g.calls[e], vec![w]);
    }

    #[test]
    fn bfs_shortest_chain_is_deterministic() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn entry() { mid_a(); mid_b(); }
            fn mid_a() { deep(); }
            fn mid_b() { mid_a(); }
            fn deep() { sink(); }
            fn sink() {}
            "#,
        )]);
        let e = node(&g, "entry");
        let s = node(&g, "sink");
        let pred = g.bfs(&[e], false);
        let chain = g.chain(&pred, s);
        assert_eq!(g.render_chain(&chain), "entry → mid_a → deep → sink");
        // Repeat — identical.
        let pred2 = g.bfs(&[e], false);
        assert_eq!(g.chain(&pred2, s), chain);
    }

    #[test]
    fn reversed_bfs_walks_callers() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { mid(); }\nfn mid() { bottom(); }\nfn bottom() {}",
        )]);
        let b = node(&g, "bottom");
        let t = node(&g, "top");
        let pred = g.bfs(&[b], true);
        assert!(pred.contains_key(&t));
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "pub fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { prod(); } }",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "prod");
    }

    #[test]
    fn allow_lines_suppress_same_and_next_line() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "// deepsd-lint: allow(panic-reach, reason=\"audited\")\nfn f() {}\n",
        )]);
        assert!(g.is_allowed("panic-reach", "crates/a/src/lib.rs", 1));
        assert!(g.is_allowed("panic-reach", "crates/a/src/lib.rs", 2));
        assert!(!g.is_allowed("panic-reach", "crates/a/src/lib.rs", 3));
        assert!(!g.is_allowed("lock-order", "crates/a/src/lib.rs", 2));
    }
}
