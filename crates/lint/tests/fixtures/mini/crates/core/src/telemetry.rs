//! Fixture telemetry: determinism-taint cases around the snapshot sink.
//! Test data for `tests/fixtures.rs` — linted, never compiled.

use std::collections::HashMap;

/// The deterministic snapshot sink the taint analysis anchors on.
pub fn to_json_without_timings(m: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    out.push_str(&tainted_names(m));
    out.push_str(&audited_names(m));
    out
}

/// True positive: unordered map iteration flowing into the sink.
fn tainted_names(m: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    for k in m.keys() {
        out.push_str(k);
    }
    out
}

/// Suppressed: the iteration is audited at the site.
fn audited_names(m: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    // deepsd-lint: allow(determinism-taint, reason="fixture: audited on purpose")
    for k in m.keys() {
        out.push_str(k);
    }
    out
}

/// False-positive guard: taints, but no sink can reach it.
pub fn unreachable_map_walk(m: &HashMap<String, f64>) -> usize {
    m.values().count()
}
