//! Fixture core crate: panic sources for the reachability analysis.
//! Test data for `tests/fixtures.rs` — linted, never compiled.

/// Reached from `serve::handle` — its panic must be reported.
pub fn helper(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

// deepsd-lint: allow(panic-reach, reason="fixture: audited on purpose")
pub fn audited_helper(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

/// False-positive guard: panics, but nothing serving-side calls it.
pub fn offline_only(v: &[u8]) -> u8 {
    v[0]
}
