//! Fixture serving crate: panic-reachability and lock-order cases.
//! This tree is test data for `tests/fixtures.rs` — it is linted by the
//! deepsd-lint binary, never compiled.

use std::sync::Mutex;

pub struct Shared {
    pub jobs: Mutex<Vec<u32>>,
    pub slot: Mutex<Option<u32>>,
}

/// True positive: reaches a panic two crates deep.
pub fn handle() {
    deepsd::helper();
}

/// Suppressed: the callee is audited at the definition.
pub fn handle_audited() {
    deepsd::audited_helper();
}

/// True positive: acquires jobs before slot…
pub fn enqueue(s: &Shared) {
    let j = s.jobs.lock();
    let sl = s.slot.lock();
    drop((j, sl));
}

/// …while this fn acquires slot before jobs: a lock-order conflict.
pub fn promote(s: &Shared) {
    let sl = s.slot.lock();
    let j = s.jobs.lock();
    drop((sl, j));
}

/// False-positive guard: same order as `enqueue` — no conflict.
pub fn drain(s: &Shared) {
    let j = s.jobs.lock();
    let sl = s.slot.lock();
    drop((j, sl));
}
