//! End-to-end tests: run the deepsd-lint binary over the fixture
//! mini-workspace in `tests/fixtures/mini` (true positive, audited
//! suppression and false-positive guard for each interprocedural
//! analysis), and over the real workspace twice to prove the output is
//! byte-identical across runs.

use std::path::PathBuf;
use std::process::Command;

fn lint(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_deepsd-lint"))
        .args(args)
        .output()
        .expect("spawn deepsd-lint");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn fixture_root() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/mini")
        .to_string_lossy()
        .into_owned()
}

fn workspace_root() -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .to_string_lossy()
        .into_owned()
}

#[test]
fn panic_reach_true_positive_allow_and_guard() {
    let (out, _, code) = lint(&["--root", &fixture_root(), "--list"]);
    assert_eq!(code, Some(0), "{out}");
    // True positive: serve::handle reaches core::helper's unwrap.
    assert!(
        out.contains("panic-reach crates/core/src/lib.rs") && out.contains("handle → helper"),
        "missing true positive:\n{out}"
    );
    // Audited at the definition: suppressed.
    assert!(
        !out.contains("audited_helper"),
        "audited fn still reported:\n{out}"
    );
    // Panics but is unreachable from every entry group: not reported.
    assert!(
        !out.contains("offline_only"),
        "unreachable fn reported:\n{out}"
    );
}

#[test]
fn determinism_taint_true_positive_allow_and_guard() {
    let (out, _, _) = lint(&["--root", &fixture_root(), "--list"]);
    // True positive: map iteration flows into the snapshot sink.
    assert!(
        out.contains("determinism-taint crates/core/src/telemetry.rs")
            && out.contains("tainted_names"),
        "missing true positive:\n{out}"
    );
    // Audited at the site: suppressed.
    assert!(
        !out.contains("determinism-taint crates/core/src/telemetry.rs:26")
            && !out.contains("audited_names"),
        "audited site still reported:\n{out}"
    );
    // Taints but no sink reaches it: not reported.
    assert!(
        !out.contains("unreachable_map_walk"),
        "unreachable taint reported:\n{out}"
    );
}

#[test]
fn lock_order_conflict_flagged_consistent_order_is_not() {
    let (out, _, _) = lint(&["--root", &fixture_root(), "--list"]);
    let lock_findings: Vec<&str> = out
        .lines()
        .filter(|l| l.starts_with("lock-order"))
        .collect();
    // enqueue (jobs→slot) vs promote (slot→jobs): exactly one conflict
    // for the pair; drain repeats enqueue's order and adds nothing.
    assert_eq!(lock_findings.len(), 1, "{out}");
    assert!(
        lock_findings[0].contains("jobs") && lock_findings[0].contains("slot"),
        "{}",
        lock_findings[0]
    );
}

#[test]
fn json_mode_is_wellformed_and_stable_ordered() {
    let (out, _, _) = lint(&["--root", &fixture_root(), "--list", "--json"]);
    assert!(out.starts_with("{\n  \"findings\": ["), "{out}");
    assert!(out.contains("\"rule\": \"panic-reach\""), "{out}");
    // Field order is fixed: rule before path before line before msg.
    let first = out.find("\"rule\"").unwrap();
    assert!(out[first..].find("\"path\"").unwrap() < out[first..].find("\"msg\"").unwrap());
    assert!(out.trim_end().ends_with('}'), "{out}");
}

#[test]
fn explain_knows_every_rule() {
    let (rules_out, _, _) = lint(&["--list-rules"]);
    for rule in rules_out.lines().filter(|l| !l.is_empty()) {
        let (out, err, code) = lint(&["--explain", rule]);
        assert_eq!(code, Some(0), "--explain {rule}: {err}");
        assert!(out.len() > 80, "--explain {rule} too thin:\n{out}");
    }
    let (_, err, code) = lint(&["--explain", "no-such-rule"]);
    assert_ne!(code, Some(0));
    assert!(err.contains("unknown rule"), "{err}");
}

#[test]
fn output_is_byte_identical_across_runs_on_the_real_workspace() {
    let root = workspace_root();
    let (a, _, code_a) = lint(&["--root", &root, "--list"]);
    let (b, _, code_b) = lint(&["--root", &root, "--list"]);
    assert_eq!(code_a, code_b);
    assert_eq!(a, b, "two --list runs differ");
    let (ja, _, _) = lint(&["--root", &root, "--list", "--json"]);
    let (jb, _, _) = lint(&["--root", &root, "--list", "--json"]);
    assert_eq!(ja, jb, "two --json runs differ");
}
