#!/bin/sh
set -u
SCALE="${1:-small}"
BINS="fig13_environment table5_residual table3_embedding fig16_finetune fig10_thresholds table4_area_embedding fig15_weekday_weights fig01_demand_curves fig11_curves ablation_design"
for BIN in $BINS; do
  echo "=== $BIN ($SCALE) ==="
  cargo run --release -p deepsd-bench --bin "$BIN" "$SCALE" || echo "FAILED: $BIN"
done
