#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from results/ files (prefers small)."""
import os, re

MAP = {
    "TABLE3": "table3", "TABLE4": "table4", "TABLE5": "table5",
    "FIG01": "fig01", "FIG10": "fig10", "FIG11": "fig11",
    "FIG15": "fig15", "FIG16": "fig16", "ABLATION": "ablation_design",
}

def load(stem):
    for scale in ("small", "smoke"):
        p = f"results/{stem}_{scale}.txt"
        if os.path.exists(p):
            body = open(p).read()
            # Drop the header line and trailing expectation notes.
            lines = [l for l in body.splitlines() if not l.startswith("== ")]
            # Trim trailing "Expected shape" commentary (kept in the file).
            out = []
            for l in lines:
                if l.startswith("Expected shape") or l.startswith("(paper"):
                    break
                out.append(l.rstrip())
            while out and not out[-1]:
                out.pop()
            tag = "" if scale == "small" else "\n\n(smoke scale; the small-scale run did not fit the CPU budget — rerun via run_experiments2.sh small)"
            return "```text\n" + "\n".join(out) + "\n```" + tag
    return "_not recorded — rerun the binary_"

s = open("EXPERIMENTS.md").read()
for ph, stem in MAP.items():
    s = s.replace(f"<!-- {ph} -->", load(stem))
open("EXPERIMENTS.md", "w").write(s)
print("filled")
